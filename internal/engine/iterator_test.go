package engine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
)

func TestIteratorMatchesMaterializedOnCycle(t *testing.T) {
	db := edgeDB()
	for _, n := range []int{3, 4, 5, 6} {
		q := cycleQuery(n)
		p := straightforward(q)
		a, err := Exec(p, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExecIterator(p, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Rel.Equal(b.Rel) {
			t.Fatalf("cycle %d: iterator engine disagrees with materializing engine", n)
		}
	}
}

func TestIteratorStats(t *testing.T) {
	q := cycleQuery(4)
	res, err := ExecIterator(straightforward(q), edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Joins != 3 || res.Stats.Projections != 1 {
		t.Fatalf("operator counts: %+v", res.Stats)
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
}

func TestIteratorRowCap(t *testing.T) {
	q := cycleQuery(9)
	_, err := ExecIterator(straightforward(q), edgeDB(), Options{MaxRows: 5})
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestIteratorTimeout(t *testing.T) {
	q := cycleQuery(13)
	_, err := ExecIterator(straightforward(q), edgeDB(), Options{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestIteratorUnknownRelation(t *testing.T) {
	p := &plan.Scan{Atom: cq.Atom{Rel: "nope", Args: []cq.Var{0, 1}}}
	if _, err := ExecIterator(p, edgeDB(), Options{}); err == nil {
		t.Fatal("expected error for unknown relation")
	}
}

func TestIteratorProjectionPushedPlans(t *testing.T) {
	// A plan with nested DISTINCT projections: both engines agree.
	pushed := &plan.Project{
		Child: &plan.Join{
			Left: &plan.Project{
				Child: &plan.Join{Left: scan(0, 1), Right: scan(1, 2)},
				Cols:  []cq.Var{0, 2},
			},
			Right: scan(2, 3),
		},
		Cols: []cq.Var{0},
	}
	db := edgeDB()
	a, err := Exec(pushed, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecIterator(pushed, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.Equal(b.Rel) {
		t.Fatal("engines disagree on projection-pushed plan")
	}
}

func TestIteratorCrossProduct(t *testing.T) {
	p := &plan.Project{
		Child: &plan.Join{Left: scan(0, 1), Right: scan(2, 3)},
		Cols:  []cq.Var{0, 2},
	}
	res, err := ExecIterator(p, edgeDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 9 {
		t.Fatalf("π{0,2} of cross product = %d rows, want 9", res.Rel.Len())
	}
}

func TestQuickIteratorEquivalence(t *testing.T) {
	db := edgeDB()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random chain query with random projections in between.
		n := 3 + rng.Intn(4)
		var cur plan.Node = scan(0, 1)
		for i := 1; i < n; i++ {
			cur = &plan.Join{Left: cur, Right: scan(i, i+1)}
			if rng.Intn(2) == 0 {
				// Keep the frontier and the start.
				cur = &plan.Project{Child: cur, Cols: []cq.Var{0, i + 1}}
			}
		}
		cur = &plan.Project{Child: cur, Cols: []cq.Var{0}}
		a, err := Exec(cur, db, Options{})
		if err != nil {
			return false
		}
		b, err := ExecIterator(cur, db, Options{})
		if err != nil {
			return false
		}
		return a.Rel.Equal(b.Rel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorLargeValues(t *testing.T) {
	// Values outside byte range exercise the escape key path.
	db := edgeDB()
	big := db["edge"].Clone()
	big.Add([]int32{1000, 2000})
	big.Add([]int32{2000, 1000})
	db["edge"] = big
	q := cycleQuery(3)
	p := straightforward(q)
	a, err := Exec(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecIterator(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.Equal(b.Rel) {
		t.Fatal("engines disagree with out-of-byte-range values")
	}
}
