package engine

import (
	"context"
	"fmt"
	"time"

	"projpush/internal/cq"
	"projpush/internal/plan"
	"projpush/internal/relation"
)

// This file implements a second executor for the same plans: a
// Volcano-style iterator (pull) engine, the execution model PostgreSQL —
// the paper's backend — actually uses. Joins build a hash table on the
// right input and stream the left input through it; projections
// deduplicate on the fly. Tuples flow one at a time, so operators other
// than hash-table builds and DISTINCT never materialize full
// intermediates.
//
// The hot paths run on the same kernels as the materializing executors:
// hash-join build tables are relation.StreamTable (flat tuple arena,
// packed-uint64/FNV join keys, open-addressing with flat duplicate
// chains) and DISTINCT state is a relation.Relation used as a dedup set —
// no string keys, no Go maps. BenchmarkEngineIterJoin measures the swap
// against the former map[string][]Tuple implementation.
//
// The materializing executor (Exec) and this one compute identical
// results; BenchmarkAblationExecutor compares them. For the paper's
// workloads the two behave alike because SELECT DISTINCT subqueries force
// materialization at every projection anyway — which is exactly why
// intermediate *arity* (width) rather than engine style governs cost.

// iterator produces tuples over a fixed schema, one per Next call.
type iterator interface {
	// Schema returns the output attributes in column order.
	Schema() []cq.Var
	// Next returns the next tuple, or nil at end of stream. The
	// returned tuple is only valid until the next call.
	Next() (relation.Tuple, error)
	// Close releases the operator's resident state back to the byte
	// budget and closes its inputs. It is idempotent.
	Close()
}

// execContext carries limits and instrumentation shared by a pipeline.
// The byte budget bounds *live* bytes: operators release their resident
// state on Close, and Stats.Bytes reports the high-water mark (peak), not
// the cumulative allocation — a long pipeline of small transient
// intermediates no longer trips ErrMemLimit when live memory is tiny.
type execContext struct {
	cctx     context.Context
	deadline time.Time
	maxRows  int
	maxBytes int64
	live     int64 // resident bytes across live operators
	peak     int64 // high-water mark of live
	stats    *Stats
	ticks    int
}

func (c *execContext) tick() error {
	c.ticks++
	if c.ticks%4096 == 0 {
		if c.cctx != nil {
			if err := c.cctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", relation.ErrCanceled, err)
			}
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return relation.ErrDeadline
		}
	}
	return nil
}

// chargeMem charges the growth of one operator's resident state (now
// bytes, previously *last) against the run's live-byte budget. State
// sizes only grow while an operator is open, so the delta path is
// branch-free in the common case; Close hands the charge back via
// release.
func (c *execContext) chargeMem(now int64, last *int64) error {
	delta := now - *last
	if delta == 0 {
		return nil
	}
	*last = now
	c.live += delta
	if c.live > c.peak {
		c.peak = c.live
	}
	if c.maxBytes > 0 && c.live > c.maxBytes {
		return relation.ErrMemBudget
	}
	return nil
}

// release returns an operator's entire resident charge to the budget.
func (c *execContext) release(last *int64) {
	c.live -= *last
	*last = 0
}

// scanIter streams a base relation with columns bound to atom variables.
type scanIter struct {
	schema []cq.Var
	rows   []relation.Tuple
	pos    int
}

func (s *scanIter) Schema() []cq.Var { return s.schema }

func (s *scanIter) Next() (relation.Tuple, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, nil
}

func (s *scanIter) Close() {}

// hashJoinIter builds a hash table over the right input, then streams the
// left input, probing and emitting combined tuples.
type hashJoinIter struct {
	ctx         *execContext
	left, right iterator
	schema      []cq.Var

	sharedLeft  []int // column indexes of shared attrs in left
	sharedRight []int // column indexes in right
	leftCols    []int // schema assembly: left column index or -1
	rightCols   []int // schema assembly: right column index or -1

	table      *relation.StreamTable
	built      bool
	closed     bool
	tableBytes int64          // last-seen table footprint, for budget deltas
	cur        relation.Tuple // current left tuple (buffer, reused)
	matches    relation.StreamMatches
	out        relation.Tuple
}

func newHashJoinIter(ctx *execContext, left, right iterator) *hashJoinIter {
	ls, rs := left.Schema(), right.Schema()
	rpos := make(map[cq.Var]int, len(rs))
	for i, a := range rs {
		rpos[a] = i
	}
	j := &hashJoinIter{ctx: ctx, left: left, right: right}
	for i, a := range ls {
		j.schema = append(j.schema, a)
		j.leftCols = append(j.leftCols, i)
		j.rightCols = append(j.rightCols, -1)
		if ri, ok := rpos[a]; ok {
			j.sharedLeft = append(j.sharedLeft, i)
			j.sharedRight = append(j.sharedRight, ri)
		}
	}
	lpos := make(map[cq.Var]int, len(ls))
	for i, a := range ls {
		lpos[a] = i
	}
	for i, a := range rs {
		if _, ok := lpos[a]; !ok {
			j.schema = append(j.schema, a)
			j.leftCols = append(j.leftCols, -1)
			j.rightCols = append(j.rightCols, i)
		}
	}
	j.out = make(relation.Tuple, len(j.schema))
	j.table = relation.NewStreamTable(len(rs), j.sharedRight)
	return j
}

func (j *hashJoinIter) Schema() []cq.Var { return j.schema }

func (j *hashJoinIter) build() error {
	n := 0
	for {
		t, err := j.right.Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		if err := j.ctx.tick(); err != nil {
			return err
		}
		n++
		if j.ctx.maxRows > 0 && n > j.ctx.maxRows {
			return relation.ErrRowLimit
		}
		j.table.Insert(t)
		if err := j.ctx.chargeMem(j.table.Bytes(), &j.tableBytes); err != nil {
			return err
		}
	}
	// The build side is fully materialized: close the right subtree so
	// nested builds and dedup states go back to the budget now.
	j.right.Close()
	j.built = true
	return nil
}

func (j *hashJoinIter) Next() (relation.Tuple, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		if j.cur != nil {
			if rt := j.matches.Next(); rt != nil {
				for i := range j.schema {
					if lc := j.leftCols[i]; lc >= 0 {
						j.out[i] = j.cur[lc]
					} else {
						j.out[i] = rt[j.rightCols[i]]
					}
				}
				return j.out, nil
			}
		}
		t, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			// Probe input exhausted: nothing will be emitted again, so
			// the build table goes back to the budget immediately.
			j.Close()
			return nil, nil
		}
		if err := j.ctx.tick(); err != nil {
			return nil, err
		}
		j.cur = append(j.cur[:0], t...)
		j.matches = j.table.Probe(j.cur, j.sharedLeft)
	}
}

func (j *hashJoinIter) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.ctx.release(&j.tableBytes)
	j.cur = nil
	j.left.Close()
	j.right.Close()
}

// distinctProjectIter projects its input onto cols and deduplicates —
// the SELECT DISTINCT subquery boundary. The seen-set is a
// relation.Relation, so dedup runs on the arena + open-addressing kernel
// instead of a string-keyed map.
type distinctProjectIter struct {
	ctx       *execContext
	in        iterator
	schema    []cq.Var
	idx       []int
	seen      *relation.Relation
	seenBytes int64 // last-seen dedup-state footprint, for budget deltas
	out       relation.Tuple
	closed    bool
}

func newDistinctProjectIter(ctx *execContext, in iterator, cols []cq.Var) (*distinctProjectIter, error) {
	pos := make(map[cq.Var]int, len(in.Schema()))
	for i, a := range in.Schema() {
		pos[a] = i
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := pos[c]
		if !ok {
			return nil, fmt.Errorf("engine: projection column x%d not in input schema", c)
		}
		for _, prev := range cols[:i] {
			if prev == c {
				return nil, fmt.Errorf("engine: projection repeats column x%d", c)
			}
		}
		idx[i] = j
	}
	return &distinctProjectIter{
		ctx:    ctx,
		in:     in,
		schema: append([]cq.Var(nil), cols...),
		idx:    idx,
		seen:   relation.New(cols),
		out:    make(relation.Tuple, len(cols)),
	}, nil
}

func (d *distinctProjectIter) Schema() []cq.Var { return d.schema }

func (d *distinctProjectIter) Next() (relation.Tuple, error) {
	for {
		t, err := d.in.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			d.in.Close()
			return nil, nil
		}
		if err := d.ctx.tick(); err != nil {
			return nil, err
		}
		for i, j := range d.idx {
			d.out[i] = t[j]
		}
		if !d.seen.Add(d.out) {
			continue
		}
		if err := d.ctx.chargeMem(d.seen.Bytes(), &d.seenBytes); err != nil {
			return nil, err
		}
		if d.ctx.maxRows > 0 && d.seen.Len() > d.ctx.maxRows {
			return nil, relation.ErrRowLimit
		}
		if d.ctx.stats != nil {
			if d.seen.Len() > d.ctx.stats.MaxRows {
				d.ctx.stats.MaxRows = d.seen.Len()
			}
			d.ctx.stats.Tuples++
		}
		return d.out, nil
	}
}

func (d *distinctProjectIter) Close() {
	if d.closed {
		return
	}
	d.closed = true
	d.ctx.release(&d.seenBytes)
	d.seen = nil
	d.in.Close()
}

// buildIterator lowers a plan to an iterator pipeline.
func buildIterator(ctx *execContext, n plan.Node, db cq.Database) (iterator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		rel, ok := db[t.Atom.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", t.Atom.Rel)
		}
		if rel.Arity() != len(t.Atom.Args) {
			return nil, fmt.Errorf("engine: atom %s arity mismatch", t.Atom)
		}
		return &scanIter{schema: t.Atom.Args, rows: rel.Tuples()}, nil
	case *plan.Join:
		l, err := buildIterator(ctx, t.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := buildIterator(ctx, t.Right, db)
		if err != nil {
			return nil, err
		}
		if ctx.stats != nil {
			ctx.stats.Joins++
		}
		return newHashJoinIter(ctx, l, r), nil
	case *plan.Project:
		in, err := buildIterator(ctx, t.Child, db)
		if err != nil {
			return nil, err
		}
		if ctx.stats != nil {
			ctx.stats.Projections++
		}
		return newDistinctProjectIter(ctx, in, t.Cols)
	default:
		return nil, fmt.Errorf("engine: unknown plan node %T", n)
	}
}

// ExecIterator evaluates the plan with the Volcano-style pull engine and
// materializes only the final result. Results are identical to Exec; the
// Stats collected are coarser (no per-operator intermediate sizes other
// than DISTINCT states). The subplan cache (opt.Cache) is ignored: this
// engine materializes no subtree results to share.
func ExecIterator(n plan.Node, db cq.Database, opt Options) (*Result, error) {
	return ExecIteratorContext(context.Background(), n, db, opt)
}

// ExecIteratorContext is ExecIterator under a context: the pipeline polls
// the context at the same cadence as the deadline check, so cancellation
// lands within a few thousand tuples and surfaces as ErrCanceled.
func ExecIteratorContext(cctx context.Context, n plan.Node, db cq.Database, opt Options) (*Result, error) {
	var stats Stats
	ctx := &execContext{cctx: cctx, maxRows: opt.MaxRows, maxBytes: opt.MaxBytes, stats: &stats}
	if opt.Timeout > 0 {
		ctx.deadline = time.Now().Add(opt.Timeout)
	}
	start := time.Now()
	it, err := buildIterator(ctx, n, db)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(append([]cq.Var(nil), it.Schema()...))
	var outBytes int64
	fail := func(err error) (*Result, error) {
		stats.Elapsed = time.Since(start)
		stats.Bytes = ctx.peak
		stats.PeakBytes = ctx.peak
		return &Result{Stats: stats}, classifyErr(err, stats.Elapsed)
	}
	for {
		t, err := it.Next()
		if err != nil {
			return fail(err)
		}
		if t == nil {
			break
		}
		out.Add(t)
		if err := ctx.chargeMem(out.Bytes(), &outBytes); err != nil {
			return fail(err)
		}
		if opt.MaxRows > 0 && out.Len() > opt.MaxRows {
			return fail(fmt.Errorf("%w: final result", relation.ErrRowLimit))
		}
	}
	it.Close()
	stats.Elapsed = time.Since(start)
	stats.Bytes = ctx.peak
	stats.PeakBytes = ctx.peak
	if out.Arity() > stats.MaxArity {
		stats.MaxArity = out.Arity()
	}
	return &Result{Rel: out, Stats: stats}, nil
}
