package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// figureWorkloads builds the structured 3-COLOR workloads behind
// Figures 6–9 (augmented paths, ladders, augmented ladders, augmented
// circular ladders), at orders small enough that even the exponential
// straightforward baseline terminates.
func figureWorkloads(t testing.TB) []struct {
	name string
	g    *graph.Graph
} {
	t.Helper()
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"fig6-augpath", graph.AugmentedPath(8)},
		{"fig7-ladder", graph.Ladder(6)},
		{"fig8-augladder", graph.AugmentedLadder(4)},
		{"fig9-augcircladder", graph.AugmentedCircularLadder(4)},
	}
}

// TestDifferentialFigureWorkloads runs every Figure-6–9 workload and
// every optimization method through the sequential executor and the
// parallel one (subtree + partition-parallel joins) and checks that the
// relations and the width instrumentation are identical. The
// straightforward plans are left-deep chains with large intermediates, so
// they exercise the radix-partitioned join path; the bucket plans are
// bushy, exercising subtree forking.
func TestDifferentialFigureWorkloads(t *testing.T) {
	for _, w := range figureWorkloads(t) {
		q, err := instance.ColorQuery(w.g, instance.BooleanFree(w.g))
		if err != nil {
			t.Fatal(err)
		}
		db := instance.ColorDatabase(3)
		for _, m := range core.Methods {
			t.Run(fmt.Sprintf("%s/%s", w.name, m), func(t *testing.T) {
				p, err := core.BuildPlan(m, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				seq, err := Exec(p, db, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4} {
					par, err := ExecParallel(p, db, Options{}, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !seq.Rel.Equal(par.Rel) {
						t.Fatalf("workers=%d: parallel relation differs (%d vs %d rows)",
							workers, par.Rel.Len(), seq.Rel.Len())
					}
					if par.Stats.MaxArity != seq.Stats.MaxArity {
						t.Fatalf("workers=%d: MaxArity %d != sequential %d",
							workers, par.Stats.MaxArity, seq.Stats.MaxArity)
					}
					if par.Stats.MaxRows != seq.Stats.MaxRows {
						t.Fatalf("workers=%d: MaxRows %d != sequential %d",
							workers, par.Stats.MaxRows, seq.Stats.MaxRows)
					}
					if par.Stats.Joins != seq.Stats.Joins || par.Stats.Projections != seq.Stats.Projections {
						t.Fatalf("workers=%d: operator counts differ: %+v vs %+v",
							workers, par.Stats, seq.Stats)
					}
				}
			})
		}
	}
}

// TestDifferentialExercisesPartitionedJoin pins down that at least one
// figure workload actually reaches the partition-parallel join kernel
// (intermediates above relation's parallel threshold of 2048 rows);
// otherwise the differential suite would silently test only the
// sequential fallback.
func TestDifferentialExercisesPartitionedJoin(t *testing.T) {
	g := graph.AugmentedPath(8)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, instance.ColorDatabase(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxRows <= 2048 {
		t.Fatalf("straightforward augmented-path intermediates peak at %d rows; "+
			"raise the workload order so the partitioned join kernel is exercised",
			res.Stats.MaxRows)
	}
}

// TestExecParallelPartitionedAborts exercises the partition-parallel join
// under timeout and row-cap aborts, concurrently — the scenario the
// -race run in `make test` is meant to sweep.
func TestExecParallelPartitionedAborts(t *testing.T) {
	g := graph.AugmentedCircularLadder(5)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := instance.ColorDatabase(3)
	p, err := core.BuildPlan(core.MethodStraightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Row caps small enough to trip mid-join, timeouts short
			// enough to trip mid-run; both must surface as their engine
			// errors, never as a hang, panic, or corrupted result.
			if _, err := ExecParallel(p, db, Options{MaxRows: 500 + 100*i}, 4); !errors.Is(err, ErrRowLimit) {
				t.Errorf("row cap: err = %v, want ErrRowLimit", err)
			}
			if _, err := ExecParallel(p, db, Options{Timeout: time.Duration(i+1) * time.Millisecond}, 4); err != nil && !errors.Is(err, ErrTimeout) {
				t.Errorf("timeout: err = %v, want ErrTimeout or success", err)
			}
		}(i)
	}
	wg.Wait()
}
