package faultinject

import (
	"sync"
	"testing"
	"time"
)

// drain records which of the first n calls to p fire.
func drain(p Point, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = FailAlloc(p)
	}
	return out
}

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable")
	}
	for i := 0; i < 1000; i++ {
		if FailAlloc(AllocJoin) {
			t.Fatal("disabled injection fired")
		}
	}
	Panic(PanicJoinWorker) // must not panic
	Sleep(LatencyKernel)   // must not sleep
}

func TestDeterministicFiringSet(t *testing.T) {
	defer Disable()
	if err := Enable("join.alloc=0.25", 42); err != nil {
		t.Fatal(err)
	}
	first := drain(AllocJoin, 2000)
	if err := Enable("join.alloc=0.25", 42); err != nil {
		t.Fatal(err)
	}
	second := drain(AllocJoin, 2000)
	fired := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("call %d diverged across identical (spec, seed)", i)
		}
		if first[i] {
			fired++
		}
	}
	if fired < 2000/8 || fired > 2000/2 {
		t.Fatalf("p=0.25 fired %d/2000 times", fired)
	}

	// A different seed fires a different set.
	if err := Enable("join.alloc=0.25", 43); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, f := range drain(AllocJoin, 2000) {
		if f != first[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not perturb the firing set")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	defer Disable()
	if err := Enable("join.panic=1", 1); err != nil {
		t.Fatal(err)
	}
	if FailAlloc(AllocJoin) {
		t.Fatal("unconfigured point fired")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("join.panic=1 did not panic")
		}
	}()
	Panic(PanicJoinWorker)
}

func TestLatencySpec(t *testing.T) {
	defer Disable()
	if err := Enable("kernel.latency=5ms:1", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Sleep(LatencyKernel)
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= ~5ms", d)
	}
}

func TestSpecErrors(t *testing.T) {
	defer Disable()
	for _, bad := range []string{"nope=0.5", "join.alloc", "join.alloc=2", "kernel.latency=xx:0.5"} {
		if err := Enable(bad, 1); err == nil {
			t.Errorf("Enable(%q) accepted", bad)
		}
	}
	if err := Enable("", 1); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

// TestConcurrentChecks exercises the counter path under -race.
func TestConcurrentChecks(t *testing.T) {
	defer Disable()
	if err := Enable("join.alloc=0.5", 9); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				FailAlloc(AllocJoin)
			}
		}()
	}
	wg.Wait()
}
