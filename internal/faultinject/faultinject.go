// Package faultinject provides deterministic, seeded fault injection for
// the execution kernels and worker pools. It exists so the resource
// governor's failure paths — allocation pressure, slow operators, and
// panicking workers — can be exercised reproducibly in tests and chaos
// runs without depending on real memory exhaustion or scheduler luck.
//
// Injection is configured per point with a firing probability (and, for
// latency, a sleep duration). Each check site draws from a counter-based
// hash of (seed, point, call number), so a fixed (spec, seed) pair fires
// on exactly the same set of calls regardless of goroutine interleaving.
// When injection is disabled — the default — every check is a single
// atomic load and the package compiles down to a no-op on the hot paths.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point identifies one injection site class.
type Point uint8

// The injection points wired into the engine stack.
const (
	// AllocJoin fails "allocations" in the join kernels: JoinLimited and
	// the partition-parallel join report a memory-budget violation.
	AllocJoin Point = iota
	// AllocProject fails allocations in the projection kernel.
	AllocProject
	// AllocSemijoin fails allocations in the semijoin kernels
	// (SemijoinLimited and the in-place SemijoinFilter).
	AllocSemijoin
	// LatencyKernel injects artificial latency at kernel entry, for
	// exercising deadlines and cancellation windows.
	LatencyKernel
	// PanicJoinWorker panics inside a partition-parallel join worker.
	PanicJoinWorker
	// PanicSubtreeWorker panics inside the parallel executor's subtree
	// worker.
	PanicSubtreeWorker
	// PanicExperimentWorker panics inside the experiments measurement
	// pool.
	PanicExperimentWorker
	// AcceptFail fails a just-accepted server connection: the listener
	// drops it before a single byte is served, as a dying peer or an
	// exhausted accept queue would.
	AcceptFail
	// ConnDrop severs a server connection mid-response: the write is
	// abandoned and the socket closed, so clients see a torn frame or an
	// unexpected EOF.
	ConnDrop
	// SlowWrite tears a server response in two: the first half of the
	// frame is written, the configured latency elapses, then the rest
	// follows — exercising client read loops and tail-latency bounds.
	SlowWrite
	// ConnReadFail severs a server connection on the read side: the
	// handler closes the socket instead of reading the next request, so
	// the peer's in-flight send or pending response read fails — the
	// receive-path twin of ConnDrop.
	ConnReadFail
	// SlowRead injects latency ahead of a server-side frame read,
	// modeling a congested inbound path or a slow-trickling peer — the
	// read-side twin of SlowWrite.
	SlowRead
	// WorkerKill hard-stops a fleet worker from the supervisor's chaos
	// loop: listener and connections close abruptly with no drain, as a
	// crashed or OOM-killed process would, and the supervisor restarts
	// the worker after its restart delay.
	WorkerKill
	// SpillWrite fails a spill-file write: the spill manager reports an
	// unrecoverable I/O failure mid-serialization, as a dying disk or a
	// yanked volume would.
	SpillWrite
	// SpillRead fails a spill-file read-back: a spilled partition cannot
	// be reloaded when its breaker replays it.
	SpillRead
	// SpillFull reports disk exhaustion (ENOSPC) from the spill manager
	// without needing a genuinely full filesystem.
	SpillFull
	// SpillSlow injects latency on spill file creation and read-back
	// open, modeling a saturated or throttled disk.
	SpillSlow

	numPoints
)

var pointNames = [numPoints]string{
	AllocJoin:             "join.alloc",
	AllocProject:          "project.alloc",
	AllocSemijoin:         "semijoin.alloc",
	LatencyKernel:         "kernel.latency",
	PanicJoinWorker:       "join.panic",
	PanicSubtreeWorker:    "subtree.panic",
	PanicExperimentWorker: "experiment.panic",
	AcceptFail:            "accept.fail",
	ConnDrop:              "conn.drop",
	SlowWrite:             "write.slow",
	ConnReadFail:          "conn.read.fail",
	SlowRead:              "read.slow",
	WorkerKill:            "worker.kill",
	SpillWrite:            "spill.write.fail",
	SpillRead:             "spill.read.fail",
	SpillFull:             "spill.full",
	SpillSlow:             "spill.slow",
}

// PointNames returns every valid spec point name, in declaration order.
// CLIs use it to enumerate the points in -faults usage text.
func PointNames() []string {
	out := make([]string, numPoints)
	copy(out, pointNames[:])
	return out
}

// String returns the spec name of the point.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

type siteCfg struct {
	prob  float64
	delay time.Duration // LatencyKernel only
}

type config struct {
	seed  uint64
	sites [numPoints]siteCfg
}

var (
	active atomic.Bool
	cfg    atomic.Pointer[config]
	counts [numPoints]atomic.Uint64
)

// Enable parses a spec and arms injection. The spec is a comma-separated
// list of point=probability entries, with an optional duration prefix for
// the latency point:
//
//	join.panic=0.05,join.alloc=0.01,kernel.latency=500us:0.02
//
// Probabilities are in [0, 1]. Enabling resets the per-point call
// counters, so a fixed (spec, seed) pair reproduces the same firing set.
func Enable(spec string, seed int64) error {
	c := &config{seed: uint64(seed)}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("faultinject: entry %q is not point=prob", entry)
		}
		p, err := pointByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		var delay time.Duration
		if d, rest, ok := strings.Cut(val, ":"); ok {
			delay, err = time.ParseDuration(strings.TrimSpace(d))
			if err != nil {
				return fmt.Errorf("faultinject: bad latency %q: %v", d, err)
			}
			val = rest
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("faultinject: bad probability %q for %s", val, name)
		}
		c.sites[p] = siteCfg{prob: prob, delay: delay}
	}
	for i := range counts {
		counts[i].Store(0)
	}
	cfg.Store(c)
	active.Store(true)
	return nil
}

// Disable disarms all injection points.
func Disable() {
	active.Store(false)
	cfg.Store(nil)
}

// Enabled reports whether any injection is armed.
func Enabled() bool { return active.Load() }

func pointByName(name string) (Point, error) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown point %q (valid points: %s)",
		name, strings.Join(PointNames(), ", "))
}

// splitmix64 finalizer: spreads (seed, point, count) over 64 bits.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fire reports whether point p fires on this call, and the site config.
func fire(p Point) (siteCfg, bool) {
	if !active.Load() {
		return siteCfg{}, false
	}
	c := cfg.Load()
	if c == nil {
		return siteCfg{}, false
	}
	s := c.sites[p]
	if s.prob <= 0 {
		return siteCfg{}, false
	}
	n := counts[p].Add(1)
	h := mix(c.seed ^ uint64(p)<<56 ^ n)
	if float64(h>>11)/(1<<53) >= s.prob {
		return siteCfg{}, false
	}
	return s, true
}

// FailAlloc reports whether an injected allocation failure fires at this
// call. Always false when injection is disabled.
func FailAlloc(p Point) bool {
	_, ok := fire(p)
	return ok
}

// Panic panics with a recognizable value when an injected worker panic
// fires. Call sites must sit under the pool's recover boundary.
func Panic(p Point) {
	if _, ok := fire(p); ok {
		panic(fmt.Sprintf("faultinject: injected panic at %s", p))
	}
}

// Sleep blocks for the configured latency when the latency point fires.
func Sleep(p Point) {
	if s, ok := fire(p); ok && s.delay > 0 {
		time.Sleep(s.delay)
	}
}

// Latency reports whether the point fires at this call and, if so, the
// configured delay. Call sites that need to interleave the delay with
// their own work (torn network writes) use this instead of Sleep.
func Latency(p Point) (time.Duration, bool) {
	s, ok := fire(p)
	return s.delay, ok
}
