package server

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

type testInstance struct {
	q  *cq.Query
	db cq.Database
}

// colorQuery builds the Boolean 3-COLOR query for a graph.
func colorQuery(t *testing.T, g *graph.Graph) *testInstance {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatalf("ColorQuery: %v", err)
	}
	return &testInstance{q: q, db: instance.ColorDatabase(3)}
}

func TestAssessWidths(t *testing.T) {
	in := colorQuery(t, graph.AugmentedPath(6))
	p, err := core.BuildPlan(core.MethodBucketElimination, in.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := assess(in.q, p, "bucketelimination", 0, 0, 0, 0, -1, in.db)
	if !v.Admitted {
		t.Fatalf("no thresholds set, want admitted, got %+v", v)
	}
	// The augmented path is a tree: treewidth 1; bucket elimination's
	// width is bounded by elimination width + 1 (Theorems 1–2).
	if v.ElimWidth != 1 {
		t.Errorf("ElimWidth = %d, want 1 (augmented path is a tree)", v.ElimWidth)
	}
	if v.PlanWidth > v.ElimWidth+1 {
		t.Errorf("PlanWidth %d exceeds elimination width + 1 = %d", v.PlanWidth, v.ElimWidth+1)
	}
	if v.AGMLog2 <= 0 {
		t.Errorf("AGMLog2 = %v, want positive for a nonempty join", v.AGMLog2)
	}

	// A width threshold below the plan width rejects.
	tight := assess(in.q, p, "bucketelimination", v.PlanWidth-1, 0, 0, 0, -1, in.db)
	if tight.Admitted {
		t.Errorf("threshold %d under plan width %d: want rejected", v.PlanWidth-1, v.PlanWidth)
	}
	// An AGM threshold below the bound rejects.
	agmTight := assess(in.q, p, "bucketelimination", 0, v.AGMLog2/2, 0, 0, -1, in.db)
	if agmTight.Admitted {
		t.Errorf("AGM threshold %v under bound %v: want rejected", v.AGMLog2/2, v.AGMLog2)
	}
}

func TestAssessSpillOverride(t *testing.T) {
	in := colorQuery(t, graph.AugmentedPath(6))
	p, err := core.BuildPlan(core.MethodBucketElimination, in.q, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := assess(in.q, p, "bucketelimination", 0, 0, 0, 0, -1, in.db)
	if base.PredictedPeakBytes <= 1 {
		t.Fatalf("want a nonzero predicted peak, got %d", base.PredictedPeakBytes)
	}
	tight := base.PredictedPeakBytes - 1
	// Over the byte threshold with spilling disabled: rejected.
	if v := assess(in.q, p, "bucketelimination", 0, 0, tight, 0, -1, in.db); v.Admitted {
		t.Errorf("predicted %d over threshold %d without spill: want rejected", v.PredictedPeakBytes, tight)
	}
	// Spilling armed with unlimited disk: admitted on spill.
	v := assess(in.q, p, "bucketelimination", 0, 0, tight, 0, 0, in.db)
	if !v.Admitted || !v.AdmittedOnSpill {
		t.Errorf("unlimited spill budget: want AdmittedOnSpill, got %+v", v)
	}
	// Spilling armed but the prediction exceeds the disk budget too:
	// rejected — disk cannot absorb what it cannot hold.
	if v := assess(in.q, p, "bucketelimination", 0, 0, tight, 0, tight, in.db); v.Admitted {
		t.Errorf("prediction over both memory and disk budgets: want rejected, got %+v", v)
	}
	// A disk budget that fits the prediction admits.
	fit := assess(in.q, p, "bucketelimination", 0, 0, tight, 0, base.PredictedPeakBytes, in.db)
	if !fit.Admitted || !fit.AdmittedOnSpill {
		t.Errorf("prediction within disk budget: want AdmittedOnSpill, got %+v", fit)
	}
	// The override never excuses a width violation.
	if v := assess(in.q, p, "bucketelimination", base.PlanWidth-1, 0, tight, 0, 0, in.db); v.Admitted {
		t.Errorf("width violation with spill armed: want rejected, got %+v", v)
	}
}

func TestAGMBound(t *testing.T) {
	// A single-atom query's AGM bound is exactly its relation's size.
	in := colorQuery(t, graph.Complete(2)) // one edge atom
	got := agmLog2(in.q, in.db)
	want := math.Log2(6) // 3-COLOR edge relation has 6 tuples
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("agmLog2(single atom) = %v, want %v", got, want)
	}
	// The bound is monotone in query size and sound: the true output of
	// the full join can never exceed 2^bound. For the triangle, the full
	// join (all proper 3-colorings) has 6 assignments; bound must be >=
	// log2(6).
	tri := colorQuery(t, graph.Complete(3))
	b := agmLog2(tri.q, tri.db)
	if b < math.Log2(6) {
		t.Errorf("triangle AGM bound 2^%v below true join size 6", b)
	}
	// An empty relation proves the join empty: bound 0.
	empty := colorQuery(t, graph.Complete(3))
	empty.db = instance.ColorDatabase(1) // k=1: no proper edge pairs
	if got := agmLog2(empty.q, empty.db); got != 0 {
		t.Errorf("agmLog2 with empty relation = %v, want 0", got)
	}
}

func TestLimiterShedsBeyondQueue(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second caller queues; third is shed immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- l.acquire(ctx) }()
	// Wait for the queue spot to be taken.
	deadline := time.Now().Add(2 * time.Second)
	for len(l.queue) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := l.acquire(context.Background()); !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("third acquire: got %v, want ErrOverloaded", err)
	}
	// Releasing the slot admits the queued caller.
	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	l.release()
}

func TestLimiterQueueWaitExpiry(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.acquire(ctx); !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("queue wait expiry: got %v, want ErrOverloaded", err)
	}
	l.release()
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(2, time.Second, clock)

	if !b.allowDirect() {
		t.Fatal("closed breaker must allow the direct path")
	}
	// Infrastructure failures trip it at the threshold.
	b.record(engine.ErrInternal)
	if !b.allowDirect() {
		t.Fatal("one failure under threshold 2 must not trip")
	}
	b.record(engine.ErrMemLimit)
	if b.allowDirect() {
		t.Fatal("two consecutive failures must trip the breaker")
	}
	if got := b.status(); got != "open" {
		t.Fatalf("status = %q, want open", got)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Second)
	if !b.allowDirect() {
		t.Fatal("cooldown elapsed: want one half-open probe")
	}
	if b.allowDirect() {
		t.Fatal("second concurrent probe must be rejected while half-open")
	}
	// Probe fails: re-open for another cooldown.
	b.record(engine.ErrInternal)
	if b.allowDirect() {
		t.Fatal("failed probe must re-open the breaker")
	}
	// Probe succeeds after the next cooldown: breaker closes.
	now = now.Add(2 * time.Second)
	if !b.allowDirect() {
		t.Fatal("want probe after second cooldown")
	}
	b.record(nil)
	if !b.allowDirect() || b.status() != "closed" {
		t.Fatalf("successful probe must close the breaker (status %q)", b.status())
	}
}

func TestBreakerIgnoresWorkloadFailures(t *testing.T) {
	b := newBreaker(1, time.Second, nil)
	// Row caps, timeouts and cancellations are properties of the query,
	// not the infrastructure: they never trip the breaker.
	for _, err := range []error{engine.ErrRowLimit, engine.ErrTimeout, engine.ErrCanceled} {
		b.record(err)
		if !b.allowDirect() {
			t.Fatalf("workload failure %v tripped the breaker", err)
		}
	}
}
