// Package server is projpushd's serving layer: a long-running TCP query
// service in front of the execution engine. Robustness is the product:
// width-aware admission control (the paper's Theorems 1–2 give a static
// predictor of intermediate blow-up, so hopeless queries are rejected
// before a single tuple is materialized), load shedding behind a bounded
// wait queue, per-method circuit breakers that route repeated failures
// onto the degradation ladder, per-connection panic isolation, and a
// graceful drain on shutdown.
//
// The wire protocol is deliberately dependency-free: each message is a
// 4-byte big-endian length prefix followed by one JSON object, over a
// plain TCP connection that may carry any number of request/response
// pairs in sequence. See Request and Response for the message schema.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds a single protocol frame. Oversized frames fail the
// read instead of buffering unboundedly, so a malicious or corrupted
// length prefix cannot exhaust server memory.
const MaxFrame = 16 << 20

// Status classifies a response. Every abnormal outcome is typed — a
// client never has to parse error strings to decide whether to retry.
type Status string

const (
	// StatusOK: the query executed; Answer holds the result.
	StatusOK Status = "ok"
	// StatusDegraded: the query executed, but only after the degradation
	// ladder rescued a failed attempt; Answer holds the (equivalent)
	// result and Stats.Attempts the history.
	StatusDegraded Status = "degraded"
	// StatusShed: admission control dropped the request because every
	// execution slot was busy and the wait queue was full or the queue
	// wait expired. Retryable.
	StatusShed Status = "shed"
	// StatusOverWidth: width-aware admission rejected the query — its
	// predicted intermediate arity or AGM output bound exceeds the
	// server's thresholds. Terminal: a retry cannot change the width.
	StatusOverWidth Status = "over_width"
	// StatusTimeout: the per-request execution deadline expired
	// mid-run. Retryable (a less loaded server may finish in time).
	StatusTimeout Status = "timeout"
	// StatusCanceled: the request's context was canceled. Terminal from
	// the server's perspective (the caller asked the run to stop).
	StatusCanceled Status = "canceled"
	// StatusResourceLimit: the run exceeded the row cap or memory budget
	// and the degradation ladder (if enabled) could not rescue it.
	// Terminal: the same limits will fail the same way.
	StatusResourceLimit Status = "resource_limit"
	// StatusInternal: an execution worker panicked; the panic was
	// isolated and the connection survives. Retryable.
	StatusInternal Status = "internal"
	// StatusParseError: the request's query text did not parse or
	// validate against the database. Terminal.
	StatusParseError Status = "parse_error"
	// StatusDraining: the server is shutting down and no longer admits
	// queries. Retryable (against a replica, or after restart).
	StatusDraining Status = "draining"
	// StatusUnavailable: a fleet coordinator found no healthy worker for
	// the request's shard and has no local fallback armed. Retryable
	// (workers may recover or rejoin).
	StatusUnavailable Status = "unavailable"
	// StatusError: any other failure (unknown op, unknown method, plan
	// construction failure). Terminal.
	StatusError Status = "error"
)

// Request is one client message.
type Request struct {
	// Op selects the endpoint: "query" executes, "explain" returns the
	// plan tree and admission verdict without executing, "health"
	// returns server counters, "ready" reports readiness (false while
	// draining).
	Op string `json:"op"`
	// Query is the query text in the cqparse format: a query clause,
	// optionally preceded by rel blocks that extend or shadow the
	// server's database for this request.
	Query string `json:"query,omitempty"`
	// Method optionally overrides the server's default optimization
	// method (straightforward, earlyprojection, reordering,
	// bucketelimination, yannakakis, stream, wcoj). When empty, narrow
	// queries may be routed to the Yannakakis full reducer
	// (Config.YannakakisWidth), mid-width queries to the streaming
	// engine (Config.StreamWidth), and cyclic queries with a small AGM
	// output bound to the worst-case-optimal executor
	// (Config.WCOJAGMLog2).
	Method string `json:"method,omitempty"`
	// Timeout optionally tightens the per-request execution deadline
	// (a Go duration string); it can never extend the server's cap.
	// A fleet coordinator rewrites it per forwarded attempt to the
	// request's remaining deadline, so failover retries shrink the
	// worker-side budget instead of resetting it.
	Timeout string `json:"timeout,omitempty"`
	// Affinity is the fingerprint-affinity header a fleet coordinator
	// stamps on forwarded requests: the renaming-invariant plan
	// fingerprint it consistent-hashed to pick the worker, so the
	// worker's request log can audit that affinity-sharded subplan-cache
	// traffic really lands on its shard. Empty on direct requests.
	Affinity string `json:"affinity,omitempty"`
	// Addr is the worker's serving address, for the coordinator ops
	// "register" (join the fleet) and "deregister" (leave gracefully:
	// new requests are re-routed to the remaining replicas while
	// in-flight ones finish).
	Addr string `json:"addr,omitempty"`
}

// Answer is a query result.
type Answer struct {
	// Attrs is the result schema (query variable ids).
	Attrs []int `json:"attrs"`
	// Nonempty is the Boolean answer.
	Nonempty bool `json:"nonempty"`
	// Rows is the result cardinality.
	Rows int `json:"rows"`
	// Tuples is the full result in sorted order, for differential
	// verification and small OLTP-style answers.
	Tuples [][]int32 `json:"tuples,omitempty"`
}

// Verdict is the admission-control assessment of a query, computed from
// schemas alone before any execution.
type Verdict struct {
	// Method is the optimization method the verdict is for.
	Method string `json:"method"`
	// PlanWidth is the predicted maximum intermediate arity of the
	// chosen method's plan — the paper's central cost measure.
	PlanWidth int `json:"plan_width"`
	// ElimWidth is the MCS elimination width of the join graph: an
	// upper bound w on treewidth, so w+1 bounds the arity achievable by
	// the best structural method (Theorems 1–2).
	ElimWidth int `json:"elim_width"`
	// AGMLog2 is the log2 of the AGM output bound (Atserias–Grohe–Marx)
	// under a greedy integral edge cover over the actual relation
	// cardinalities: the full join's output can never exceed 2^AGMLog2
	// rows.
	AGMLog2 float64 `json:"agm_log2"`
	// PredictedPeakBytes is a static upper bound on the streaming
	// engine's peak live bytes: the sum of the referenced base
	// relations' footprints. Every pipeline breaker stores at most the
	// needed columns of one base input (pre-reduced by pushdown), so a
	// run can never hold more than all of them at once. This is the
	// quantity byte-budget admission reasons about — cumulative
	// materialization is unbounded by the inputs, peak residency is not.
	PredictedPeakBytes int64 `json:"predicted_peak_bytes"`
	// MaxWidth, MaxAGMLog2 and MaxPredictedBytes echo the thresholds in
	// force (0 = off).
	MaxWidth          int     `json:"max_width,omitempty"`
	MaxAGMLog2        float64 `json:"max_agm_log2,omitempty"`
	MaxPredictedBytes int64   `json:"max_predicted_bytes,omitempty"`
	// WCOJAGMLog2 echoes the worst-case-optimal override threshold in
	// force (0 = off; see AdmittedOnAGM).
	WCOJAGMLog2 float64 `json:"wcoj_agm_log2,omitempty"`
	// Admitted reports whether the query passed every threshold.
	Admitted bool `json:"admitted"`
	// AdmittedOnAGM reports that the query failed the width threshold
	// but was admitted anyway because its AGM output bound is within
	// WCOJAGMLog2 and the worst-case-optimal executor — whose total work
	// is bounded by that output bound, not by the plan width — will run
	// it. Width is the wrong admission quantity for a multiway join;
	// the output bound is the right one.
	AdmittedOnAGM bool `json:"admitted_on_agm,omitempty"`
	// AdmittedOnSpill reports that the query failed the predicted-bytes
	// threshold but was admitted anyway because the server has spilling
	// armed (Config.SpillDir) and the prediction fits the disk budget —
	// the executors degrade the overage to disk latency instead of dying
	// with ErrMemLimit.
	AdmittedOnSpill bool `json:"admitted_on_spill,omitempty"`
}

// AttemptInfo is one degradation-ladder rung of an executed request.
type AttemptInfo struct {
	Method string `json:"method"`
	Err    string `json:"err,omitempty"`
}

// RunStats is the executed request's instrumentation, mirroring
// engine.Stats. An admission rejection carries no RunStats at all:
// nothing ran, nothing was materialized.
type RunStats struct {
	MaxRows  int   `json:"max_rows"`
	MaxArity int   `json:"max_arity"`
	Tuples   int64 `json:"tuples"`
	Bytes    int64 `json:"bytes"`
	// PeakBytes is the high-water mark of live relation storage; for
	// the streaming engine Bytes reports the same peak, for the
	// materializing executors Bytes is the cumulative total.
	PeakBytes   int64 `json:"peak_bytes"`
	Joins       int   `json:"joins"`
	Projections int   `json:"projections"`
	// Materialized counts tuples written by joins, projections and bag
	// evaluation; Reduced counts tuples deleted by the Yannakakis
	// semijoin sweeps (zero for plan executors).
	Materialized int64 `json:"materialized,omitempty"`
	Reduced      int64 `json:"reduced,omitempty"`
	// Seeks and Extensions instrument the worst-case-optimal executor's
	// leapfrog intersections (zero for every other route).
	Seeks      int64 `json:"seeks,omitempty"`
	Extensions int64 `json:"extensions,omitempty"`
	// SpilledBytes and SpillFiles instrument out-of-core execution: the
	// cumulative bytes and file count the run wrote to the spill
	// directory (zero when the run stayed in memory).
	SpilledBytes int64         `json:"spilled_bytes,omitempty"`
	SpillFiles   int           `json:"spill_files,omitempty"`
	ElapsedUS    int64         `json:"elapsed_us"`
	Attempts     []AttemptInfo `json:"attempts,omitempty"`
}

// Health is the health endpoint's payload.
type Health struct {
	// Ready is false while the server drains.
	Ready bool `json:"ready"`
	// InFlight is the number of requests currently executing.
	InFlight int64 `json:"in_flight"`
	// Served counts successfully answered queries (ok + degraded).
	Served int64 `json:"served"`
	// Degraded counts answers that needed the degradation ladder.
	Degraded int64 `json:"degraded"`
	// Shed, OverWidth and Failed count rejected and failed queries.
	Shed      int64 `json:"shed"`
	OverWidth int64 `json:"over_width"`
	Failed    int64 `json:"failed"`
	// Breakers maps each method that has seen traffic to its circuit
	// breaker state ("closed", "open", "half-open").
	Breakers map[string]string `json:"breakers,omitempty"`
	// Worker echoes the server's configured worker id (fleet members
	// only; empty on single-process servers).
	Worker string `json:"worker,omitempty"`
	// Workers maps each fleet member's address to its health state
	// ("up", "down", "half-open", "draining") — present only on
	// coordinator health responses.
	Workers map[string]string `json:"workers,omitempty"`
	// Failovers, Hedges, Rescued and Unavailable count coordinator-side
	// events: worker attempts that failed over to the next replica,
	// hedge requests fired against a second replica, requests rescued by
	// the coordinator's local degraded execution after every replica for
	// their shard was down, and requests that found no healthy replica
	// with no local fallback armed.
	Failovers   int64 `json:"failovers,omitempty"`
	Hedges      int64 `json:"hedges,omitempty"`
	Rescued     int64 `json:"rescued,omitempty"`
	Unavailable int64 `json:"unavailable,omitempty"`
}

// Response is one server message.
type Response struct {
	Status  Status    `json:"status"`
	Error   string    `json:"error,omitempty"`
	Answer  *Answer   `json:"answer,omitempty"`
	Verdict *Verdict  `json:"verdict,omitempty"`
	Stats   *RunStats `json:"stats,omitempty"`
	Explain string    `json:"explain,omitempty"`
	Health  *Health   `json:"health,omitempty"`
	Ready   *bool     `json:"ready,omitempty"`
	// Worker identifies the fleet member that produced the response
	// (its Config.WorkerID, or its address when the coordinator filled
	// it in; "local" for a coordinator's local degraded execution).
	// Empty on single-process servers.
	Worker string `json:"worker,omitempty"`
	// Failovers counts the replicas that failed before this answer was
	// produced — each one a worker the coordinator gave up on (dropped
	// connection, timeout, shed, draining, isolated fault) before
	// retrying the next replica on the ring with the remaining deadline.
	Failovers int `json:"failovers,omitempty"`
	// Hedged reports that the answer came from a hedge request: a
	// second replica fired after the coordinator's p95-based delay that
	// beat the still-running first attempt.
	Hedged bool `json:"hedged,omitempty"`
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: marshal frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("server: frame length %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}
