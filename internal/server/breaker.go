package server

import (
	"errors"
	"sync"
	"time"

	"projpush/internal/engine"
)

// breaker is a per-method circuit breaker over the direct execution
// path. Repeated infrastructure-class failures — worker panics
// (ErrInternal) and memory-budget blowups (ErrMemLimit) — trip it open;
// while open, requests for the method skip the direct path and run on
// the degradation ladder instead, whose rungs re-plan with safer methods
// and a sequential executor. After a cooldown the breaker goes half-open
// and lets one trial request back onto the direct path; success closes
// it, failure re-opens it for another cooldown.
//
// Resource verdicts that are properties of the query rather than the
// infrastructure (row caps on a genuinely explosive plan, timeouts,
// cancellations) do not count toward tripping: they would open the
// breaker on workload shape, not on system health.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to trip (<=0 disables)
	cooldown  time.Duration // open duration before half-open
	now       func() time.Time

	failures int
	state    breakerState
	openedAt time.Time
	probing  bool // a half-open trial is in flight
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allowDirect reports whether the next request may take the direct
// execution path. While open (cooldown not yet elapsed) it returns
// false; once the cooldown elapses it admits exactly one trial request
// (half-open) until that trial reports its outcome.
func (b *breaker) allowDirect() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports a direct-path outcome. Only ErrInternal and ErrMemLimit
// count as breaker failures; any other outcome (success included) resets
// the failure streak and closes the breaker.
func (b *breaker) record(err error) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err != nil && (errors.Is(err, engine.ErrInternal) || errors.Is(err, engine.ErrMemLimit)) {
		b.failures++
		if b.failures >= b.threshold || b.state == breakerHalfOpen {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
		return
	}
	b.failures = 0
	b.state = breakerClosed
}

// status renders the current state for the health endpoint.
func (b *breaker) status() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen.String()
	}
	return b.state.String()
}
