// Black-box tests for the retry layer's backoff policy: the injectable
// jitter source makes the sleeps deterministic, and a backoff that
// cannot fit the context's remaining deadline is skipped instead of
// slept — the failover-ladder contract the coordinator relies on.
package client_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"projpush/internal/server"
	"projpush/internal/server/client"
)

// startSheddingServer serves a Handler-mode server that sheds every
// query — the always-retryable peer the backoff tests need.
func startSheddingServer(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{
		Handler: func(_ context.Context, req *server.Request, remote string) *server.Response {
			return &server.Response{Status: server.StatusShed, Error: "drill shed"}
		},
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv.Addr().String()
}

// TestBackoffSkipsSleepsTheDeadlineCannotFit pins the budget contract:
// when the next backoff exceeds the context's remaining deadline, the
// client returns the terminal typed answer immediately — it neither
// burns the budget in a doomed sleep nor issues a retry that could
// never complete.
func TestBackoffSkipsSleepsTheDeadlineCannotFit(t *testing.T) {
	addr := startSheddingServer(t)
	c := client.New(client.Options{
		Addr:           addr,
		MaxRetries:     10,
		BaseBackoff:    300 * time.Millisecond,
		MaxBackoff:     time.Second,
		AttemptTimeout: time.Second,
		Jitter:         func() float64 { return 0.5 }, // factor exactly 1.0
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()

	start := time.Now()
	resp, err := c.Query(ctx, "ignored", "")
	elapsed := time.Since(start)

	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusShed {
		t.Fatalf("err = %v, want the typed shed outcome", err)
	}
	if resp == nil || resp.Status != server.StatusShed {
		t.Errorf("resp = %+v, want the shed response alongside the error", resp)
	}
	if got := c.Attempts(); got != 1 {
		t.Errorf("attempts = %d, want 1 (the 300ms backoff cannot fit a 150ms budget)", got)
	}
	if elapsed >= 150*time.Millisecond {
		t.Errorf("returned after %v; the deadline budget was burned in a doomed sleep", elapsed)
	}
}

// TestInjectedJitterDrivesBackoff pins the injectable jitter source:
// the sleeps are exactly the deterministic factors it returns, so
// drills and the coordinator's failover ladder can decorrelate (or
// here, zero out and count) retry timing.
func TestInjectedJitterDrivesBackoff(t *testing.T) {
	addr := startSheddingServer(t)
	var draws atomic.Int64
	c := client.New(client.Options{
		Addr:           addr,
		MaxRetries:     3,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		AttemptTimeout: time.Second,
		Jitter: func() float64 {
			draws.Add(1)
			return 0 // factor 0.5: minimum sleeps, deterministic
		},
	})
	resp, err := c.Query(context.Background(), "ignored", "")
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != server.StatusShed {
		t.Fatalf("err = %v, want the typed shed outcome after retries", err)
	}
	if resp == nil || resp.Status != server.StatusShed {
		t.Errorf("resp = %+v, want the final shed response", resp)
	}
	if got := c.Attempts(); got != 4 {
		t.Errorf("attempts = %d, want 4 (initial + 3 retries)", got)
	}
	if got := draws.Load(); got != 3 {
		t.Errorf("jitter drawn %d times, want once per backoff (3)", got)
	}
}
