// Package client is the retrying client for the projpushd protocol. It
// distinguishes retryable outcomes — shed under load, server-side
// timeouts, isolated internal faults, torn connections — from terminal
// ones (parse errors, over-width rejections, resource verdicts), and
// retries only the former under exponential backoff with jitter, so a
// thundering herd of failed clients decorrelates instead of
// resynchronizing on the struggling server.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"projpush/internal/engine"
	"projpush/internal/server"
)

// StatusError is a typed non-OK server response. It aliases the engine's
// sentinels under errors.Is where one applies: an over_width response
// matches engine.ErrOverWidth, a shed or draining response matches
// engine.ErrOverloaded, a timeout matches engine.ErrTimeout (and
// therefore context.DeadlineExceeded).
type StatusError struct {
	Status server.Status
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Status, e.Msg)
}

// Is aliases wire statuses to the engine's sentinel errors.
func (e *StatusError) Is(target error) bool {
	switch e.Status {
	case server.StatusOverWidth:
		return target == engine.ErrOverWidth
	case server.StatusShed, server.StatusDraining, server.StatusUnavailable:
		return target == engine.ErrOverloaded
	case server.StatusTimeout:
		return target == engine.ErrTimeout || errors.Is(engine.ErrTimeout, target)
	case server.StatusInternal:
		return target == engine.ErrInternal
	case server.StatusResourceLimit:
		return target == engine.ErrMemLimit || target == engine.ErrRowLimit
	case server.StatusCanceled:
		return target == engine.ErrCanceled || errors.Is(engine.ErrCanceled, target)
	}
	return false
}

// Retryable reports whether an error warrants another attempt: network
// failures (dial errors, torn frames, dropped connections) and the
// retryable wire statuses do; terminal statuses and context expiry of
// the caller's own context do not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case server.StatusShed, server.StatusTimeout, server.StatusInternal,
			server.StatusDraining, server.StatusUnavailable:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Anything else at this layer is a transport failure.
	return true
}

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// AttemptTimeout bounds each request/response round trip (default
	// 30s); the per-call context can always end it earlier.
	AttemptTimeout time.Duration
	// MaxRetries is the number of retries after the first attempt
	// (default 4). Only retryable failures are retried.
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts (defaults 25ms and 2s); each wait is scaled by a uniform
	// jitter in [0.5, 1.5).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter RNG (0 uses a fixed default; drills want
	// distinct seeds per client).
	Seed int64
	// Jitter, when non-nil, replaces the seeded RNG as the backoff
	// jitter source: each call must return a factor in [0, 1). Failover
	// tests inject a constant so retry schedules are deterministic
	// regardless of how many clients share the process.
	Jitter func() float64
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 30 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	return o
}

// Client issues requests with retries. Safe for concurrent use; each
// attempt uses its own connection.
type Client struct {
	opt Options

	mu  sync.Mutex
	rng *rand.Rand

	// Attempts counts round trips issued (including retries), for
	// drill instrumentation.
	attempts int64
}

// New returns a client for the server at opt.Addr.
func New(opt Options) *Client {
	opt = opt.withDefaults()
	return &Client{opt: opt, rng: rand.New(rand.NewSource(opt.Seed + 1))}
}

// Attempts returns the total round trips issued so far.
func (c *Client) Attempts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Do sends one request, retrying retryable failures with backoff. On a
// non-OK status it returns the response alongside a *StatusError, so
// callers can inspect the verdict and stats of typed rejections.
func (c *Client) Do(ctx context.Context, req *server.Request) (*server.Response, error) {
	var lastResp *server.Response
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(ctx, req)
		if err == nil {
			switch resp.Status {
			case server.StatusOK, server.StatusDegraded:
				return resp, nil
			default:
				err = &StatusError{Status: resp.Status, Msg: resp.Error}
			}
		}
		lastResp, lastErr = resp, err
		if attempt >= c.opt.MaxRetries || !Retryable(err) || ctx.Err() != nil {
			return lastResp, lastErr
		}
		if werr := c.wait(ctx, attempt); werr != nil {
			return lastResp, lastErr
		}
	}
}

// Query executes a query text (cqparse format) under the method
// ("" uses the server default).
func (c *Client) Query(ctx context.Context, query, method string) (*server.Response, error) {
	return c.Do(ctx, &server.Request{Op: "query", Query: query, Method: method})
}

// Explain fetches the plan tree and admission verdict without executing.
func (c *Client) Explain(ctx context.Context, query, method string) (*server.Response, error) {
	return c.Do(ctx, &server.Request{Op: "explain", Query: query, Method: method})
}

// Health fetches the server's health counters (no retries beyond the
// usual transport policy).
func (c *Client) Health(ctx context.Context) (*server.Health, error) {
	resp, err := c.Do(ctx, &server.Request{Op: "health"})
	if err != nil {
		return nil, err
	}
	if resp.Health == nil {
		return nil, fmt.Errorf("client: health response without payload")
	}
	return resp.Health, nil
}

// Ready reports server readiness; false (with nil error) while draining.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	resp, err := c.roundTrip(ctx, &server.Request{Op: "ready"})
	if err != nil {
		return false, err
	}
	return resp.Ready != nil && *resp.Ready, nil
}

// roundTrip performs one dial/send/receive cycle.
func (c *Client) roundTrip(ctx context.Context, req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	c.attempts++
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.opt.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(c.opt.AttemptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	// A canceled context must unblock the read immediately — a hedged
	// request's loser would otherwise sit in ReadFrame until the attempt
	// deadline, holding its connection and goroutine open.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if err := server.WriteFrame(conn, req); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp server.Response
	if err := server.ReadFrame(conn, &resp); err != nil {
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	return &resp, nil
}

// wait sleeps the jittered exponential backoff for the given attempt,
// or returns early when ctx ends. A backoff that would not fit the
// context's remaining deadline is not slept at all: the retry it buys
// could never complete, so the caller gets its terminal answer with the
// deadline budget unspent instead of burned in a doomed sleep.
func (c *Client) wait(ctx context.Context, attempt int) error {
	backoff := c.opt.BaseBackoff << uint(attempt)
	if backoff > c.opt.MaxBackoff || backoff <= 0 {
		backoff = c.opt.MaxBackoff
	}
	d := time.Duration(float64(backoff) * (0.5 + c.jitter()))
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); d >= remaining {
			return context.DeadlineExceeded
		}
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter draws one backoff jitter factor in [0, 1) from the injected
// source or the seeded RNG.
func (c *Client) jitter() float64 {
	if c.opt.Jitter != nil {
		return c.opt.Jitter()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}
