package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/plan"
	"projpush/internal/resilience"
)

// Config configures a Server. The zero value of every bound means
// "use the default", documented per field.
type Config struct {
	// DB is the server-resident database queries are answered over.
	// Requests may carry rel blocks that extend or shadow it per
	// request.
	DB cq.Database
	// Method is the default optimization method (default
	// bucketelimination, the paper's most robust).
	Method core.Method
	// MaxWidth rejects queries whose chosen plan's width (maximum
	// intermediate arity) exceeds it (0 = no width threshold).
	MaxWidth int
	// MaxAGMLog2 rejects queries whose AGM output bound exceeds
	// 2^MaxAGMLog2 rows (0 = no AGM threshold).
	MaxAGMLog2 float64
	// MaxPredictedBytes rejects queries whose predicted peak live bytes
	// (the referenced base relations' combined footprint — what a
	// streaming run can hold resident at once) exceed it (0 = no
	// threshold).
	MaxPredictedBytes int64
	// MaxConcurrent bounds concurrently executing requests (default 4).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; arrivals
	// beyond slots+queue are shed immediately (default 2*MaxConcurrent).
	MaxQueue int
	// QueueWait bounds the time a request may wait for a slot before
	// being shed (default 1s) — the tail-latency bound under overload.
	QueueWait time.Duration
	// RequestTimeout is the per-request execution deadline (default
	// 10s). Requests may tighten it, never extend it.
	RequestTimeout time.Duration
	// MaxRows and MaxBytes bound each execution (engine.Options).
	MaxRows  int
	MaxBytes int64
	// SpillDir, when non-empty, arms out-of-core execution: runs that
	// would blow MaxBytes spill pipeline-breaker and hash-build state to
	// temp files under this directory instead of failing, and the
	// resilient path retries memory failures with spilling before
	// degrading methods. It also relaxes admission: a methodless query
	// rejected only by MaxPredictedBytes is admitted when its prediction
	// fits MaxSpillBytes (Verdict.AdmittedOnSpill).
	SpillDir string
	// MaxSpillBytes bounds each run's spill-directory footprint
	// (0 = unlimited disk).
	MaxSpillBytes int64
	// Workers is the executor's worker count for the direct path
	// (default 1, the sequential executor).
	Workers int
	// YannakakisWidth routes requests that did not name a method to the
	// Yannakakis full reducer when their MCS elimination width is at most
	// this bound (default engine.DefaultYannakakisWidth; <0 disables the
	// routing). Acyclic queries have elimination width 1 and always
	// qualify under the default.
	YannakakisWidth int
	// StreamWidth routes requests that did not name a method and were too
	// wide for the Yannakakis routing to the pipelined streaming engine
	// when their MCS elimination width is at most this bound (default
	// engine.DefaultStreamWidth; <0 disables the routing). The streaming
	// engine's budget bounds peak live bytes rather than cumulative
	// materialization, so mid-width queries fit budgets the materializing
	// executors blow.
	StreamWidth int
	// WCOJAGMLog2 routes requests that did not name a method and were too
	// wide for both width tiers to the worst-case-optimal executor when
	// their AGM output bound is within 2^WCOJAGMLog2 rows (default
	// engine.DefaultWCOJAGMLog2; <0 disables the routing). It also
	// relaxes admission: a query rejected only by MaxWidth is admitted
	// and routed to wcoj when its AGM bound qualifies, because the
	// multiway join's work is bounded by the output bound, not the plan
	// width — cyclic queries the server used to reject with ErrOverWidth
	// now answer.
	WCOJAGMLog2 float64
	// Resilient runs every degradable failure down the degradation
	// ladder even with a closed breaker. With it off, the ladder is
	// used only while a method's breaker is open.
	Resilient bool
	// BreakerThreshold trips a method's circuit breaker after this many
	// consecutive infrastructure failures (ErrInternal/ErrMemLimit) on
	// the direct path (default 3; <0 disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open trial (default 5s).
	BreakerCooldown time.Duration
	// Cache, when non-nil, is shared by every execution.
	Cache *engine.Cache
	// Log, when non-nil, receives one structured JSON line per request
	// (fingerprint, admission verdict, status, attempts, bytes).
	Log io.Writer
	// WorkerID, when non-empty, identifies this server as a fleet member:
	// it is stamped on every response (Response.Worker) and on the health
	// payload, so coordinators and load generators can attribute
	// outcomes per worker.
	WorkerID string
	// Handler, when non-nil, replaces the built-in query lifecycle:
	// every request (any op) is dispatched to it under the same
	// connection handling, panic isolation, and in-flight accounting.
	// ctx is canceled when the requesting connection's peer disconnects
	// mid-request (and when the connection closes), so long-running
	// handlers — the cluster coordinator's fan-out in particular — stop
	// instead of running to their full timeout for a client that is
	// gone. The cluster coordinator fronts a worker fleet this way,
	// reusing the accept loop, network fault points, and graceful drain
	// without duplicating them.
	Handler func(ctx context.Context, req *Request, remote string) *Response

	// now is the breaker clock, injectable in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Method == "" {
		c.Method = core.MethodBucketElimination
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.YannakakisWidth == 0 {
		c.YannakakisWidth = engine.DefaultYannakakisWidth
	}
	if c.StreamWidth == 0 {
		c.StreamWidth = engine.DefaultStreamWidth
	}
	if c.WCOJAGMLog2 == 0 {
		c.WCOJAGMLog2 = engine.DefaultWCOJAGMLog2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is a long-running query service over one database.
type Server struct {
	cfg Config
	lim *limiter

	ln       net.Listener
	draining atomic.Bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	breakers map[string]*breaker

	wg       sync.WaitGroup // connection handlers
	inFlight atomic.Int64   // requests currently being handled

	// counters for the health endpoint
	served, degraded, shed, overWidth, failed atomic.Int64

	logMu sync.Mutex
}

// New returns an unstarted server; call Listen then Serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		lim:      newLimiter(cfg.MaxConcurrent, cfg.MaxQueue),
		conns:    make(map[net.Conn]struct{}),
		breakers: make(map[string]*breaker),
	}
}

// Listen binds the server to addr ("127.0.0.1:0" picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address (after Listen).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Draining reports whether Shutdown or Abort has begun: readiness is
// false and new queries are refused.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlightRequests returns the number of requests currently being
// handled, so a Handler-mode front end (the cluster coordinator) can
// report the same in_flight gauge the built-in health endpoint does.
func (s *Server) InFlightRequests() int64 { return s.inFlight.Load() }

// Serve accepts connections until the listener is closed (Shutdown). It
// returns nil on a clean shutdown. Each connection gets its own handler
// goroutine with panic isolation: a fault in one connection can never
// take down the process or its sibling connections.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		if faultinject.FailAlloc(faultinject.AcceptFail) {
			c.Close()
			continue
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown drains the server: readiness flips false first, the listener
// closes, in-flight requests get until ctx's deadline to finish, then
// every connection is force-closed and the handlers joined. It is safe
// to call once; subsequent requests on surviving connections are
// answered StatusDraining.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// Drain: wait for in-flight requests, bounded by ctx.
	drained := ctx.Err() == nil
	for drained && s.inFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			drained = false
		case <-time.After(time.Millisecond):
		}
	}
	// Force-close every connection; idle handlers blocked in ReadFrame
	// unblock with an error and exit.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if !drained {
		return fmt.Errorf("server: drain deadline expired with %d requests in flight", s.inFlight.Load())
	}
	return nil
}

// Abort hard-stops the server without draining: the listener and every
// live connection close immediately, exactly as a crashed or OOM-killed
// process would look to its peers. In-flight handler goroutines keep
// running until their execution finishes and their response write fails;
// call Shutdown afterwards to join them. Worker-loss chaos drills use
// Abort as the kill primitive.
func (s *Server) Abort() {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// handleConn serves one connection's request/response loop. Each
// request is handled under a context canceled when the peer hangs up:
// while a request is in flight, a watcher goroutine blocks in Peek on
// the connection's buffered reader — the only bytes that can legally
// arrive there are the next pipelined request's, so a read error means
// the client is gone and the in-flight work (a coordinator fan-out, an
// execution) should stop rather than run out its timeout. The watcher
// doubles as the idle wait between requests: it returns exactly when
// ReadFrame would unblock, and is always joined before the next read
// (bufio.Reader is not concurrency-safe) and before the handler exits
// (the drain's goroutine-leak guarantee).
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	var watchDone chan struct{}
	defer func() {
		// Connection-level panic isolation: a handler bug kills this
		// connection only, never the process.
		if r := recover(); r != nil {
			s.logLine(map[string]any{"event": "conn_panic", "remote": c.RemoteAddr().String(), "panic": fmt.Sprint(r)})
		}
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		if watchDone != nil {
			<-watchDone // Peek unblocked by the Close above
		}
	}()
	connCtx, cancelConn := context.WithCancel(context.Background())
	defer cancelConn()
	br := bufio.NewReader(c)
	remote := c.RemoteAddr().String()
	for {
		// Read-side network fault points, the receive twins of
		// ConnDrop/SlowWrite: a failed read severs the connection before
		// the next request is consumed, a slow read stalls the inbound
		// path ahead of the frame.
		if faultinject.FailAlloc(faultinject.ConnReadFail) {
			return // defer closes the socket under the peer
		}
		faultinject.Sleep(faultinject.SlowRead)
		var req Request
		if err := ReadFrame(br, &req); err != nil {
			return // EOF, torn frame, or force-close during drain
		}
		rctx, cancelReq := context.WithCancel(connCtx)
		watchDone = make(chan struct{})
		go func(cancel context.CancelFunc) {
			defer close(watchDone)
			if _, err := br.Peek(1); err != nil {
				cancel()
			}
		}(cancelReq)
		resp := s.handleRequest(rctx, &req, remote)
		if err := s.writeResponse(c, resp); err != nil {
			return // defer closes the socket and joins the watcher
		}
		<-watchDone // next request's first byte arrived, or the peer left
		cancelReq()
		watchDone = nil
	}
}

// writeResponse writes one frame through the network fault-injection
// points: a dropped connection abandons the response, a slow write
// tears the frame in two around the configured latency.
func (s *Server) writeResponse(c net.Conn, resp *Response) error {
	if faultinject.FailAlloc(faultinject.ConnDrop) {
		c.Close()
		return fmt.Errorf("server: injected connection drop")
	}
	if delay, ok := faultinject.Latency(faultinject.SlowWrite); ok {
		return WriteFrame(tornWriter{c: c, delay: delay}, resp)
	}
	return WriteFrame(c, resp)
}

// tornWriter splits each write in half around a delay, modelling a
// congested or faulty network path.
type tornWriter struct {
	c     net.Conn
	delay time.Duration
}

func (t tornWriter) Write(p []byte) (int, error) {
	half := len(p) / 2
	n, err := t.c.Write(p[:half])
	if err != nil {
		return n, err
	}
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	m, err := t.c.Write(p[half:])
	return n + m, err
}

// handleRequest dispatches one request with request-level panic
// isolation: a panic is converted into a StatusInternal response and the
// connection keeps serving.
func (s *Server) handleRequest(ctx context.Context, req *Request, remote string) (resp *Response) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			s.failed.Add(1)
			resp = &Response{Status: StatusInternal, Error: fmt.Sprintf("request handler panic: %v", r)}
		}
		if resp != nil && resp.Worker == "" && s.cfg.WorkerID != "" {
			resp.Worker = s.cfg.WorkerID
		}
	}()
	if s.cfg.Handler != nil {
		return s.cfg.Handler(ctx, req, remote)
	}
	switch req.Op {
	case "health":
		return &Response{Status: StatusOK, Health: s.health()}
	case "ready":
		ready := !s.draining.Load()
		return &Response{Status: StatusOK, Ready: &ready}
	case "query", "explain":
		return s.handleQuery(ctx, req, remote)
	default:
		return &Response{Status: StatusError, Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// health snapshots the counters.
func (s *Server) health() *Health {
	h := &Health{
		Ready:     !s.draining.Load(),
		Worker:    s.cfg.WorkerID,
		InFlight:  s.inFlight.Load(),
		Served:    s.served.Load(),
		Degraded:  s.degraded.Load(),
		Shed:      s.shed.Load(),
		OverWidth: s.overWidth.Load(),
		Failed:    s.failed.Load(),
	}
	s.mu.Lock()
	if len(s.breakers) > 0 {
		h.Breakers = make(map[string]string, len(s.breakers))
		for m, b := range s.breakers {
			h.Breakers[m] = b.status()
		}
	}
	s.mu.Unlock()
	return h
}

// breakerFor returns the method's breaker, creating it on first use.
func (s *Server) breakerFor(method string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[method]
	if !ok {
		b = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.cfg.now)
		s.breakers[method] = b
	}
	return b
}

// handleQuery is the per-request lifecycle: parse, plan, admit, queue,
// execute (direct or ladder), classify, log. reqCtx is the connection's
// per-request context: a peer disconnect cancels the queue wait and the
// execution instead of holding a slot for a client that is gone.
func (s *Server) handleQuery(reqCtx context.Context, req *Request, remote string) *Response {
	start := time.Now()
	logEntry := map[string]any{
		"op":     req.Op,
		"remote": remote,
	}
	defer func() {
		logEntry["elapsed_us"] = time.Since(start).Microseconds()
		s.logLine(logEntry)
	}()
	finish := func(r *Response) *Response {
		logEntry["status"] = string(r.Status)
		if r.Error != "" {
			logEntry["error"] = r.Error
		}
		return r
	}

	if s.draining.Load() {
		s.shed.Add(1)
		return finish(&Response{Status: StatusDraining, Error: "server is draining"})
	}

	// Parse the query text against the resident database.
	file, err := cqparse.ParseWith(strings.NewReader(req.Query), s.cfg.DB)
	if err != nil {
		s.failed.Add(1)
		return finish(&Response{Status: StatusParseError, Error: err.Error()})
	}
	q, db := file.Query, file.DB

	// Resolve the method and build its plan (static, cheap).
	method := s.cfg.Method
	if req.Method != "" {
		method = core.Method(req.Method)
	}
	if !validMethod(method) {
		s.failed.Add(1)
		return finish(&Response{Status: StatusError, Error: fmt.Sprintf("unknown method %q", method)})
	}
	p, err := core.BuildPlan(method, q, nil)
	if err != nil {
		s.failed.Add(1)
		return finish(&Response{Status: StatusError, Error: "plan: " + err.Error()})
	}
	logEntry["method"] = string(method)
	logEntry["fp"] = FingerprintID(p)
	if req.Affinity != "" {
		// Coordinator-stamped affinity header: lets the log audit that
		// consistent-hash routing keeps a fingerprint's subplan-cache
		// traffic on this shard.
		logEntry["affinity"] = req.Affinity
	}

	// Width-aware admission: reject before materializing anything. The
	// worst-case-optimal override applies only when the wcoj executor
	// would actually run — a methodless request (routed below) or an
	// explicit wcoj one — since for any other method the plan width, not
	// the output bound, governs the intermediates.
	wcojAGM := s.cfg.WCOJAGMLog2
	if wcojAGM < 0 || (req.Method != "" && method != core.MethodWCOJ) {
		wcojAGM = 0
	}
	// The spill override applies only to methodless requests: routing
	// below picks an executor that can actually spill, whereas an
	// explicitly named method may be one (parallel, wcoj) that ignores
	// the spill directory and would die at the budget anyway.
	spillBytes := int64(-1)
	if s.cfg.SpillDir != "" && req.Method == "" {
		spillBytes = s.cfg.MaxSpillBytes
	}
	verdict := assess(q, p, string(method), s.cfg.MaxWidth, s.cfg.MaxAGMLog2, s.cfg.MaxPredictedBytes, wcojAGM, spillBytes, db)
	if !verdict.Admitted {
		logEntry["verdict"] = "over_width"
		logEntry["plan_width"] = verdict.PlanWidth
		s.overWidth.Add(1)
		return finish(&Response{
			Status: StatusOverWidth,
			Error: fmt.Sprintf("%v: plan width %d (elimination width %d, AGM log2 %.1f) over thresholds (width %d, AGM log2 %.1f)",
				engine.ErrOverWidth, verdict.PlanWidth, verdict.ElimWidth, verdict.AGMLog2, verdict.MaxWidth, verdict.MaxAGMLog2),
			Verdict: verdict,
		})
	}
	logEntry["verdict"] = "admitted"
	if verdict.AdmittedOnAGM {
		// The width cap said no and the AGM bound overrode it — the
		// one admission the log must distinguish from a plain admit.
		logEntry["verdict"] = "admitted_on_agm"
		logEntry["agm_log2"] = verdict.AGMLog2
	}
	if verdict.AdmittedOnSpill {
		// The byte cap said no and the spill budget overrode it.
		logEntry["verdict"] = "admitted_on_spill"
		logEntry["predicted_peak_bytes"] = verdict.PredictedPeakBytes
	}

	// Width-tiered routing for requests that did not name a method:
	// narrow queries run the Yannakakis full reducer (peak memory
	// proportional to the reduced inputs), mid-width queries run the
	// streaming engine (peak live bytes bounded by the pipeline's
	// breakers, with semijoin pushdown pre-reducing every build side).
	switch {
	case req.Method == "" && verdict.AdmittedOnAGM:
		// The query is over-width but its output bound is small: only
		// the worst-case-optimal executor can honor that admission.
		method = core.MethodWCOJ
		logEntry["method"] = string(method)
		verdict.Method = string(method)
	case req.Method == "" && s.cfg.YannakakisWidth > 0 && verdict.ElimWidth <= s.cfg.YannakakisWidth:
		method = core.MethodYannakakis
		logEntry["method"] = string(method)
		verdict.Method = string(method)
	case req.Method == "" && s.cfg.StreamWidth > 0 && verdict.ElimWidth <= s.cfg.StreamWidth:
		method = core.MethodStream
		logEntry["method"] = string(method)
		verdict.Method = string(method)
		if p, err = core.BuildPlan(method, q, nil); err != nil {
			s.failed.Add(1)
			return finish(&Response{Status: StatusError, Error: "plan: " + err.Error()})
		}
	case req.Method == "" && s.cfg.WCOJAGMLog2 > 0 && verdict.AGMLog2 <= s.cfg.WCOJAGMLog2:
		// Too wide for both width tiers but the AGM bound is small —
		// the cyclic-query shape the leapfrog join exists for.
		method = core.MethodWCOJ
		logEntry["method"] = string(method)
		verdict.Method = string(method)
	}

	if req.Op == "explain" {
		var text string
		switch method {
		case core.MethodYannakakis:
			text, err = engine.ExplainYannakakis(q, db, engine.Options{}, false)
		case core.MethodStream:
			text, err = engine.ExplainStream(p, db, engine.Options{}, false)
		case core.MethodWCOJ:
			text, err = engine.ExplainWCOJ(q, db, engine.Options{}, false)
		default:
			text, err = engine.Explain(p, db, engine.Options{}, false)
		}
		if err != nil {
			s.failed.Add(1)
			return finish(&Response{Status: StatusError, Error: err.Error()})
		}
		return finish(&Response{Status: StatusOK, Explain: text, Verdict: verdict})
	}

	// Concurrency gate: bounded queue, bounded wait, typed shedding.
	queueCtx, cancelQueue := context.WithTimeout(reqCtx, s.cfg.QueueWait)
	err = s.lim.acquire(queueCtx)
	cancelQueue()
	if err != nil {
		logEntry["verdict"] = "shed"
		s.shed.Add(1)
		return finish(&Response{Status: StatusShed, Error: err.Error(), Verdict: verdict})
	}
	defer s.lim.release()

	timeout := s.cfg.RequestTimeout
	if req.Timeout != "" {
		if d, perr := time.ParseDuration(req.Timeout); perr == nil && d > 0 && d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(reqCtx, timeout)
	defer cancel()
	opt := engine.Options{
		MaxRows: s.cfg.MaxRows, MaxBytes: s.cfg.MaxBytes, Cache: s.cfg.Cache,
		SpillDir: s.cfg.SpillDir, MaxSpillBytes: s.cfg.MaxSpillBytes,
	}

	// Execute: direct path unless this method's breaker is open (or the
	// server runs fully resilient), in which case the degradation
	// ladder re-plans with safer methods.
	br := s.breakerFor(string(method))
	direct := br.allowDirect()
	var res *engine.Result
	switch {
	case method == core.MethodYannakakis && (s.cfg.Resilient || !direct):
		// Full reducer first, degrading to the plan-based ladder.
		res, err = engine.ExecResilientStrategy(ctx, resilience.YannakakisRung(q),
			resilience.PlanLadder(q, nil), db, opt, s.cfg.Workers)
		if direct {
			br.record(directOutcome(res))
		}
	case method == core.MethodYannakakis:
		res, err = engine.ExecYannakakisContext(ctx, q, db, opt)
		br.record(err)
	case method == core.MethodStream && (s.cfg.Resilient || !direct):
		// Streaming engine first, degrading to the plan-based ladder.
		res, err = engine.ExecResilientStrategy(ctx, resilience.StreamRung(q),
			resilience.PlanLadder(q, nil), db, opt, s.cfg.Workers)
		if direct {
			br.record(directOutcome(res))
		}
	case method == core.MethodStream:
		res, err = engine.ExecStreamContext(ctx, p, db, opt)
		br.record(err)
	case method == core.MethodWCOJ && (s.cfg.Resilient || !direct):
		// Leapfrog multiway join first, degrading to the plan-based
		// ladder (whose bucket-elimination plan is the width-optimal
		// materializing fallback).
		res, err = engine.ExecResilientStrategy(ctx, resilience.WCOJRung(q),
			resilience.PlanLadder(q, nil), db, opt, s.cfg.Workers)
		if direct {
			br.record(directOutcome(res))
		}
	case method == core.MethodWCOJ:
		res, err = engine.ExecWCOJContext(ctx, q, db, opt)
		br.record(err)
	case s.cfg.Resilient || !direct:
		res, err = engine.ExecResilient(ctx, p, resilience.DegradationLadder(q, nil), db, opt, s.cfg.Workers)
		if direct {
			br.record(directOutcome(res))
		}
	default:
		if s.cfg.Workers > 1 {
			res, err = engine.ExecParallelContext(ctx, p, db, opt, s.cfg.Workers)
		} else {
			res, err = engine.ExecContext(ctx, p, db, opt)
		}
		br.record(err)
	}

	resp := &Response{Verdict: verdict}
	if res != nil {
		resp.Stats = StatsOf(&res.Stats)
		logEntry["bytes"] = res.Stats.Bytes
		logEntry["attempts"] = len(res.Stats.Attempts)
	}
	if err != nil {
		resp.Status, resp.Error = ClassifyStatus(err), err.Error()
		s.failed.Add(1)
		return finish(resp)
	}
	resp.Status = StatusOK
	if len(res.Stats.Attempts) > 1 {
		resp.Status = StatusDegraded
		s.degraded.Add(1)
	}
	s.served.Add(1)
	resp.Answer = AnswerOf(res)
	logEntry["rows"] = resp.Answer.Rows
	return finish(resp)
}

// directOutcome recovers the direct path's own outcome from a resilient
// run's attempt history, so breaker accounting is identical whether the
// ladder ran or not.
func directOutcome(res *engine.Result) error {
	if res == nil || len(res.Stats.Attempts) == 0 {
		return nil
	}
	first := res.Stats.Attempts[0]
	if first.Err == "" {
		return nil
	}
	switch {
	case strings.Contains(first.Err, engine.ErrInternal.Error()):
		return engine.ErrInternal
	case strings.Contains(first.Err, engine.ErrMemLimit.Error()):
		return engine.ErrMemLimit
	}
	return errors.New(first.Err)
}

// ClassifyStatus maps an engine failure to its wire status.
func ClassifyStatus(err error) Status {
	switch {
	case errors.Is(err, engine.ErrTimeout):
		return StatusTimeout
	case errors.Is(err, engine.ErrCanceled):
		return StatusCanceled
	case errors.Is(err, engine.ErrRowLimit), errors.Is(err, engine.ErrMemLimit):
		return StatusResourceLimit
	case errors.Is(err, engine.ErrInternal):
		return StatusInternal
	default:
		return StatusError
	}
}

// AnswerOf renders a result relation in sorted order.
func AnswerOf(res *engine.Result) *Answer {
	rel := res.Rel
	attrs := make([]int, len(rel.Attrs()))
	for i, a := range rel.Attrs() {
		attrs[i] = int(a)
	}
	sorted := rel.SortedTuples()
	tuples := make([][]int32, len(sorted))
	for i, t := range sorted {
		row := make([]int32, len(t))
		for j, v := range t {
			row[j] = int32(v)
		}
		tuples[i] = row
	}
	return &Answer{Attrs: attrs, Nonempty: rel.Len() > 0, Rows: rel.Len(), Tuples: tuples}
}

// StatsOf converts engine stats for the wire.
func StatsOf(st *engine.Stats) *RunStats {
	rs := &RunStats{
		MaxRows:      st.MaxRows,
		MaxArity:     st.MaxArity,
		Tuples:       st.Tuples,
		Bytes:        st.Bytes,
		PeakBytes:    st.PeakBytes,
		Joins:        st.Joins,
		Projections:  st.Projections,
		Materialized: st.MaterializedTuples,
		Reduced:      st.ReducedTuples,
		Seeks:        st.Seeks,
		Extensions:   st.Extensions,
		SpilledBytes: st.SpilledBytes,
		SpillFiles:   st.SpillFiles,
		ElapsedUS:    st.Elapsed.Microseconds(),
	}
	for _, a := range st.Attempts {
		rs.Attempts = append(rs.Attempts, AttemptInfo{Method: a.Method, Err: a.Err})
	}
	return rs
}

// FingerprintID hashes a plan's renaming-invariant fingerprint to a
// short stable id for the request log.
func FingerprintID(p plan.Node) string {
	fp, _ := plan.Fingerprint(p)
	h := fnv.New64a()
	io.WriteString(h, fp)
	return fmt.Sprintf("%016x", h.Sum64())
}

func validMethod(m core.Method) bool {
	if m == core.MethodYannakakis || m == core.MethodStream || m == core.MethodWCOJ {
		return true
	}
	for _, known := range core.Methods {
		if m == known {
			return true
		}
	}
	return false
}

// logLine emits one JSON log line (best effort, serialized).
func (s *Server) logLine(fields map[string]any) {
	if s.cfg.Log == nil {
		return
	}
	fields["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(fields)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.Log.Write(append(line, '\n'))
	s.logMu.Unlock()
}
