// Chaos drill: concurrent retrying clients against a server with
// network and engine faults injected. The acceptance bar (ISSUE 5):
// clients see only typed outcomes, every returned answer is
// differentially equal to the oracle, over-width queries are rejected
// at admission without materializing any intermediate, and SIGTERM-style
// shutdown drains with zero goroutine leaks — all under -race.
//
// This is a black-box test (package server_test): it drives the real
// wire protocol through internal/server/client, which internal/server's
// own tests cannot import without a cycle.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/server"
	"projpush/internal/server/client"
)

// chaosCase is a query text plus its oracle answer.
type chaosCase struct {
	name   string
	text   string
	tuples [][]int32
}

// buildChaosCases renders a mix of low-width 3-COLOR queries with free
// variables (so answers are real relations, not just booleans) and
// computes each oracle answer once, up front, with no faults armed.
func buildChaosCases(t *testing.T, db cq.Database) []chaosCase {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"augpath4", graph.AugmentedPath(4)},
		{"augpath5", graph.AugmentedPath(5)},
		{"ladder3", graph.Ladder(3)},
		{"cycle5", graph.Cycle(5)},
	}
	var cases []chaosCase
	for _, gc := range graphs {
		free := instance.ChooseFree(instance.EdgeVertices(gc.g), 0.3, rng)
		q, err := instance.ColorQuery(gc.g, free)
		if err != nil {
			t.Fatalf("%s: ColorQuery: %v", gc.name, err)
		}
		var buf bytes.Buffer
		if err := cqparse.WriteQuery(&buf, q); err != nil {
			t.Fatalf("%s: WriteQuery: %v", gc.name, err)
		}
		oracle, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatalf("%s: EvalOracle: %v", gc.name, err)
		}
		sorted := oracle.SortedTuples()
		tuples := make([][]int32, len(sorted))
		for i, tup := range sorted {
			row := make([]int32, len(tup))
			for j, v := range tup {
				row[j] = int32(v)
			}
			tuples[i] = row
		}
		cases = append(cases, chaosCase{name: gc.name, text: buf.String(), tuples: tuples})
	}
	return cases
}

// overWidthQuery renders a query whose every plan's width exceeds the
// drill's admission threshold (K6: treewidth 5, so plan width >= 6).
func overWidthQuery(t *testing.T) string {
	t.Helper()
	g := graph.Complete(6)
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cqparse.WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func sameTuples(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestChaosDrill(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db := instance.ColorDatabase(3)
	cases := buildChaosCases(t, db)
	wide := overWidthQuery(t)

	srv := server.New(server.Config{
		DB: db,
		// Free variables push the drill queries' plan width to 4
		// (they must survive every intermediate); K6 needs 6. The
		// worst-case-optimal override is disabled so the wide probes
		// exercise the rejection path this drill verifies.
		MaxWidth:         5,
		WCOJAGMLog2:      -1,
		MaxConcurrent:    2,
		MaxQueue:         2,
		QueueWait:        50 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		MaxRows:          200_000,
		MaxBytes:         8 << 20, // tight budget: injected allocs must hit it
		Resilient:        true,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	addr := srv.Addr().String()

	// Network faults (dropped accepts, torn slow writes, dropped
	// connections) plus engine faults (panics, failed allocations,
	// kernel latency), deterministic per (seed, point, call index).
	spec := "accept.fail=0.05,conn.drop=0.05,write.slow=1ms:0.08," +
		"kernel.latency=1ms:0.1,join.panic=0.03,join.alloc=0.03"
	if err := faultinject.Enable(spec, 42); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	const (
		numClients  = 6
		perClient   = 8
		wideAtIndex = 3 // each client sends one over-width probe here
	)
	type tally struct {
		ok, degraded, shed, overWidth, timeout, resource, internal int
	}
	var (
		mu     sync.Mutex
		counts tally
		wg     sync.WaitGroup
	)
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(client.Options{
				Addr:           addr,
				MaxRetries:     8,
				AttemptTimeout: 3 * time.Second,
				BaseBackoff:    2 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				Seed:           int64(ci) + 1,
			})
			for r := 0; r < perClient; r++ {
				if r == wideAtIndex {
					resp, err := c.Query(context.Background(), wide, "")
					var se *client.StatusError
					switch {
					case err == nil:
						t.Errorf("client %d: over-width query admitted", ci)
					case !errors.As(err, &se) || se.Status != server.StatusOverWidth:
						t.Errorf("client %d: over-width query: got %v, want %s", ci, err, server.StatusOverWidth)
					case !errors.Is(err, engine.ErrOverWidth):
						t.Errorf("client %d: over-width error does not alias engine.ErrOverWidth", ci)
					case resp == nil || resp.Verdict == nil:
						t.Errorf("client %d: over-width response lacks admission verdict", ci)
					case resp.Stats != nil:
						// The acceptance criterion: rejection happens at
						// admission, before any intermediate exists.
						t.Errorf("client %d: over-width response carries execution stats %+v", ci, resp.Stats)
					default:
						mu.Lock()
						counts.overWidth++
						mu.Unlock()
					}
					continue
				}
				cse := cases[(ci*perClient+r)%len(cases)]
				resp, err := c.Query(context.Background(), cse.text, "")
				if err == nil {
					if resp.Status != server.StatusOK && resp.Status != server.StatusDegraded {
						t.Errorf("client %d: nil error with status %s", ci, resp.Status)
						continue
					}
					if resp.Answer == nil {
						t.Errorf("client %d: %s: OK without an answer", ci, cse.name)
						continue
					}
					// Differential check: no lost or duplicated answers.
					if !sameTuples(resp.Answer.Tuples, cse.tuples) {
						t.Errorf("client %d: %s: answer has %d rows, oracle has %d (or rows differ)",
							ci, cse.name, len(resp.Answer.Tuples), len(cse.tuples))
					}
					mu.Lock()
					if resp.Status == server.StatusDegraded {
						counts.degraded++
					} else {
						counts.ok++
					}
					mu.Unlock()
					continue
				}
				// Failures must be typed: a *StatusError with one of the
				// documented outcomes, never a raw transport error or hang.
				var se *client.StatusError
				if !errors.As(err, &se) {
					t.Errorf("client %d: %s: untyped failure after retries: %v", ci, cse.name, err)
					continue
				}
				mu.Lock()
				switch se.Status {
				case server.StatusShed, server.StatusDraining:
					counts.shed++
				case server.StatusTimeout:
					counts.timeout++
				case server.StatusResourceLimit:
					counts.resource++
				case server.StatusInternal:
					counts.internal++
				default:
					t.Errorf("client %d: %s: unexpected typed status %s: %v", ci, cse.name, se.Status, err)
				}
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	faultinject.Disable()

	if counts.ok+counts.degraded == 0 {
		t.Error("drill produced no successful answers")
	}
	if counts.overWidth != numClients {
		t.Errorf("over-width rejections = %d, want %d", counts.overWidth, numClients)
	}
	t.Logf("drill outcomes: ok=%d degraded=%d shed=%d over_width=%d timeout=%d resource=%d internal=%d",
		counts.ok, counts.degraded, counts.shed, counts.overWidth, counts.timeout, counts.resource, counts.internal)

	// Health must reconcile with what clients observed.
	hc := client.New(client.Options{Addr: addr})
	h, err := hc.Health(context.Background())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Served < int64(counts.ok) {
		t.Errorf("health.Served = %d, below client-observed %d", h.Served, counts.ok)
	}
	if h.OverWidth < int64(numClients) {
		t.Errorf("health.OverWidth = %d, want >= %d", h.OverWidth, numClients)
	}

	// Clean drain: Shutdown completes in deadline, Serve returns nil,
	// the port stops answering, and no goroutines are left behind.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if _, err := hc.Ready(context.Background()); err == nil {
		t.Error("server still answering after drain")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak after drain: %d > %d\n%s", n, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosDrillSpill is the disk-failure-domain drill (ISSUE 9): the
// server runs with spilling enabled under a memory budget tight enough
// that most drill queries must go out of core, while spill.* faults
// corrupt writes, reads, disk capacity, and latency. The acceptance
// bar is the same as the network drill: typed outcomes only, every
// returned answer differentially equal to the oracle, at least one
// success actually went through the spill path, and the drain leaves
// no goroutines behind — all under -race.
func TestChaosDrillSpill(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db := instance.ColorDatabase(3)
	cases := buildChaosCases(t, db)
	spillDir := t.TempDir()

	srv := server.New(server.Config{
		DB:            db,
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueWait:     50 * time.Millisecond,
		// 4500 bytes sits below the stream peak of most drill queries
		// (4960–6960 bytes) but inside their out-of-core rescue window,
		// so the resilient ladder's "+spill" rungs carry the load.
		RequestTimeout:   2 * time.Second,
		MaxRows:          200_000,
		MaxBytes:         4500,
		SpillDir:         spillDir,
		MaxSpillBytes:    1 << 20,
		Resilient:        true,
		BreakerThreshold: 4,
		BreakerCooldown:  100 * time.Millisecond,
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	addr := srv.Addr().String()

	// Disk faults on every spill point, plus a little connection churn
	// so the retry loop stays honest. The probabilities are per check
	// site and a single out-of-core run makes hundreds of faultable
	// calls (every block write, read, and byte charge), so per-run
	// fault rates are much higher than these numbers suggest: at these
	// settings some spill attempts die of injected disk failures (and
	// recover down the ladder) while others complete with real traffic.
	spec := "conn.drop=0.03,spill.write.fail=0.003,spill.read.fail=0.002," +
		"spill.full=0.001,spill.slow=1ms:0.02"
	if err := faultinject.Enable(spec, 43); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()

	const (
		numClients = 4
		perClient  = 6
	)
	type tally struct {
		ok, degraded, spilled, shed, timeout, resource, internal int
	}
	var (
		mu     sync.Mutex
		counts tally
		wg     sync.WaitGroup
	)
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := client.New(client.Options{
				Addr:           addr,
				MaxRetries:     8,
				AttemptTimeout: 3 * time.Second,
				BaseBackoff:    2 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				Seed:           int64(ci) + 1,
			})
			for r := 0; r < perClient; r++ {
				cse := cases[(ci*perClient+r)%len(cases)]
				// The stream route: its live-byte accounting blows the
				// 4500-byte budget on most drill queries, forcing the
				// "stream+spill" retry (the methodless route leads with
				// the full reducer, which fits these queries in memory).
				resp, err := c.Query(context.Background(), cse.text, "stream")
				if err == nil {
					if resp.Status != server.StatusOK && resp.Status != server.StatusDegraded {
						t.Errorf("client %d: nil error with status %s", ci, resp.Status)
						continue
					}
					if resp.Answer == nil {
						t.Errorf("client %d: %s: OK without an answer", ci, cse.name)
						continue
					}
					// Differential check: answers recovered through spill
					// (and spill faults) lose and duplicate nothing.
					if !sameTuples(resp.Answer.Tuples, cse.tuples) {
						t.Errorf("client %d: %s: answer has %d rows, oracle has %d (or rows differ)",
							ci, cse.name, len(resp.Answer.Tuples), len(cse.tuples))
					}
					mu.Lock()
					if resp.Status == server.StatusDegraded {
						counts.degraded++
					} else {
						counts.ok++
					}
					if resp.Stats != nil && resp.Stats.SpilledBytes > 0 {
						counts.spilled++
					}
					mu.Unlock()
					continue
				}
				var se *client.StatusError
				if !errors.As(err, &se) {
					t.Errorf("client %d: %s: untyped failure after retries: %v", ci, cse.name, err)
					continue
				}
				mu.Lock()
				switch se.Status {
				case server.StatusShed, server.StatusDraining:
					counts.shed++
				case server.StatusTimeout:
					counts.timeout++
				case server.StatusResourceLimit:
					counts.resource++
				case server.StatusInternal:
					counts.internal++
				default:
					t.Errorf("client %d: %s: unexpected typed status %s: %v", ci, cse.name, se.Status, err)
				}
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	faultinject.Disable()

	if counts.ok+counts.degraded == 0 {
		t.Error("spill drill produced no successful answers")
	}
	if counts.spilled == 0 {
		t.Error("no successful answer reported spill traffic; the drill never exercised the disk path")
	}
	t.Logf("spill drill outcomes: ok=%d degraded=%d spilled=%d shed=%d timeout=%d resource=%d internal=%d",
		counts.ok, counts.degraded, counts.spilled, counts.shed, counts.timeout, counts.resource, counts.internal)

	// Clean drain, no goroutine leaks, no stray spill files: the spill
	// directory must be empty once every run has settled (each run's
	// Cleanup removes its own tempdir).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if entries, err := os.ReadDir(spillDir); err != nil {
		t.Errorf("reading spill dir after drain: %v", err)
	} else if len(entries) > 0 {
		t.Errorf("%d spill temp dirs left behind after drain (faulted runs must clean up)", len(entries))
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak after drain: %d > %d\n%s", n, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
}

// TestClientRetryPolicy pins the retry classification: shed and timeout
// are retryable, over-width and parse errors are terminal, and the
// sentinel aliasing works through errors.Is.
func TestClientRetryPolicy(t *testing.T) {
	retryable := []*client.StatusError{
		{Status: server.StatusShed},
		{Status: server.StatusTimeout},
		{Status: server.StatusInternal},
		{Status: server.StatusDraining},
	}
	for _, se := range retryable {
		if !client.Retryable(se) {
			t.Errorf("%s: want retryable", se.Status)
		}
	}
	terminal := []*client.StatusError{
		{Status: server.StatusOverWidth},
		{Status: server.StatusParseError},
		{Status: server.StatusResourceLimit},
		{Status: server.StatusCanceled},
		{Status: server.StatusError},
	}
	for _, se := range terminal {
		if client.Retryable(se) {
			t.Errorf("%s: want terminal", se.Status)
		}
	}
	if client.Retryable(context.Canceled) {
		t.Error("caller cancellation must not be retried")
	}

	aliases := []struct {
		status server.Status
		target error
	}{
		{server.StatusOverWidth, engine.ErrOverWidth},
		{server.StatusShed, engine.ErrOverloaded},
		{server.StatusDraining, engine.ErrOverloaded},
		{server.StatusTimeout, engine.ErrTimeout},
		{server.StatusTimeout, context.DeadlineExceeded},
		{server.StatusInternal, engine.ErrInternal},
		{server.StatusCanceled, engine.ErrCanceled},
	}
	for _, a := range aliases {
		if !errors.Is(&client.StatusError{Status: a.status}, a.target) {
			t.Errorf("status %s does not alias %v under errors.Is", a.status, a.target)
		}
	}
}
