package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/faultinject"
	"projpush/internal/graph"
	"projpush/internal/instance"
)

// queryText renders a graph's Boolean 3-COLOR query as a query-only
// request (the server holds the edge database).
func queryText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cqparse.WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startServer listens on a free port and serves until the test ends.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve()
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		<-done
	})
	return s, s.Addr().String()
}

// roundTrip sends one request on a fresh connection.
func roundTrip(t *testing.T, addr string, req *Request) *Response {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if err := WriteFrame(c, req); err != nil {
		t.Fatalf("send: %v", err)
	}
	var resp Response
	if err := ReadFrame(c, &resp); err != nil {
		t.Fatalf("receive: %v", err)
	}
	return &resp
}

func TestQueryAnswerMatchesOracle(t *testing.T) {
	g := graph.AugmentedPath(5)
	in := colorQuery(t, g)
	var log bytes.Buffer
	_, addr := startServer(t, Config{DB: in.db, Log: &log})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g)})
	if resp.Status != StatusOK {
		t.Fatalf("status = %s (%s), want ok", resp.Status, resp.Error)
	}
	oracle, err := engine.EvalOracle(in.q, in.db)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer == nil || resp.Answer.Rows != oracle.Len() {
		t.Fatalf("answer rows = %+v, oracle has %d", resp.Answer, oracle.Len())
	}
	want := oracle.SortedTuples()
	for i, row := range resp.Answer.Tuples {
		for j, v := range row {
			if v != int32(want[i][j]) {
				t.Fatalf("tuple[%d][%d] = %d, oracle %d", i, j, v, want[i][j])
			}
		}
	}
	if resp.Stats == nil || resp.Stats.Joins == 0 {
		t.Errorf("executed query must carry run stats, got %+v", resp.Stats)
	}

	// The request log carries fingerprint, verdict and status.
	line := log.String()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("log line %q: %v", line, err)
	}
	for _, key := range []string{"fp", "verdict", "status", "method", "elapsed_us"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("log line missing %q: %v", key, entry)
		}
	}
}

func TestOverWidthRejectedWithoutMaterializing(t *testing.T) {
	// K6 has treewidth 5: every method's plan width is 6, over the
	// threshold of 3. Admission must reject before any execution. The
	// worst-case-optimal override is disabled: this test pins the pure
	// rejection path (see TestAGMOverrideAdmitsWideQuery for the
	// admit-and-answer path).
	g := graph.Complete(6)
	in := colorQuery(t, g)
	s, addr := startServer(t, Config{DB: in.db, MaxWidth: 3, WCOJAGMLog2: -1})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g)})
	if resp.Status != StatusOverWidth {
		t.Fatalf("status = %s (%s), want over_width", resp.Status, resp.Error)
	}
	if resp.Verdict == nil || resp.Verdict.Admitted || resp.Verdict.PlanWidth <= 3 {
		t.Fatalf("verdict = %+v, want rejected with plan width > 3", resp.Verdict)
	}
	// Nothing may have been materialized: no stats frame at all.
	if resp.Stats != nil {
		t.Fatalf("over-width rejection carried run stats %+v: an intermediate was materialized", resp.Stats)
	}
	if got := s.overWidth.Load(); got != 1 {
		t.Errorf("overWidth counter = %d, want 1", got)
	}
}

func TestAGMOverrideAdmitsWideQuery(t *testing.T) {
	// K6 3-COLOR is over MaxWidth=3 for every plan method, but its AGM
	// output bound is tiny (a 3-edge cover of 6 variables charges
	// 3·log2(6) ≈ 7.75 bits). With the worst-case-optimal override at
	// its default, the same request the previous test saw rejected is
	// now admitted, routed to the wcoj executor, and answered — the
	// answer (empty: K6 is not 3-colorable) matching the oracle.
	g := graph.Complete(6)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db, MaxWidth: 3})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g)})
	if resp.Status != StatusOK {
		t.Fatalf("status = %s (%s), want ok", resp.Status, resp.Error)
	}
	if resp.Verdict == nil || !resp.Verdict.Admitted || !resp.Verdict.AdmittedOnAGM {
		t.Fatalf("verdict = %+v, want AdmittedOnAGM", resp.Verdict)
	}
	if resp.Verdict.Method != string(core.MethodWCOJ) {
		t.Errorf("routed method = %q, want wcoj", resp.Verdict.Method)
	}
	oracle, err := engine.EvalOracle(in.q, in.db)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer == nil || resp.Answer.Nonempty != (oracle.Len() > 0) {
		t.Fatalf("answer = %+v, oracle has %d rows (K6 is not 3-colorable)", resp.Answer, oracle.Len())
	}
	if resp.Stats == nil || resp.Stats.Seeks == 0 {
		t.Errorf("wcoj run must report leapfrog seeks, got %+v", resp.Stats)
	}

	// A nonempty wide instance answers too: C5 3-COLOR under MaxWidth=2
	// (its plan width is 3) with both width tiers disabled.
	g2 := graph.Cycle(5)
	in2 := colorQuery(t, g2)
	_, addr2 := startServer(t, Config{DB: in2.db, MaxWidth: 2, YannakakisWidth: -1, StreamWidth: -1})
	resp2 := roundTrip(t, addr2, &Request{Op: "query", Query: queryText(t, g2)})
	if resp2.Status != StatusOK {
		t.Fatalf("C5 status = %s (%s), want ok", resp2.Status, resp2.Error)
	}
	if resp2.Answer == nil || !resp2.Answer.Nonempty {
		t.Fatalf("C5 is 3-colorable, got answer %+v", resp2.Answer)
	}

	// An explicit non-wcoj method request keeps the rejection: the
	// override only applies when the wcoj executor will run.
	resp3 := roundTrip(t, addr, &Request{
		Op: "query", Query: queryText(t, g), Method: string(core.MethodBucketElimination),
	})
	if resp3.Status != StatusOverWidth {
		t.Errorf("explicit bucketelimination on K6: status = %s, want over_width", resp3.Status)
	}
}

func TestParseAndMethodErrors(t *testing.T) {
	in := colorQuery(t, graph.Ladder(3))
	_, addr := startServer(t, Config{DB: in.db})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: "query ans(x) :- nosuch(x, y)."})
	if resp.Status != StatusParseError {
		t.Errorf("unknown relation: status = %s, want parse_error", resp.Status)
	}
	resp = roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, graph.Ladder(3)), Method: "nosuchmethod"})
	if resp.Status != StatusError {
		t.Errorf("unknown method: status = %s, want error", resp.Status)
	}
	resp = roundTrip(t, addr, &Request{Op: "frobnicate"})
	if resp.Status != StatusError {
		t.Errorf("unknown op: status = %s, want error", resp.Status)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	in := colorQuery(t, graph.Ladder(3))
	_, addr := startServer(t, Config{DB: in.db})
	resp := roundTrip(t, addr, &Request{Op: "explain", Query: queryText(t, graph.Ladder(3))})
	if resp.Status != StatusOK || resp.Explain == "" {
		t.Fatalf("explain: %+v", resp)
	}
	if resp.Verdict == nil || !resp.Verdict.Admitted {
		t.Fatalf("explain verdict = %+v", resp.Verdict)
	}
	if resp.Answer != nil || resp.Stats != nil {
		t.Errorf("explain must not execute: answer=%v stats=%v", resp.Answer, resp.Stats)
	}
}

func TestDegradedAnswerViaLadder(t *testing.T) {
	// The straightforward method blows a tight row cap on the augmented
	// ladder; the ladder rescues the run with a projection-pushing
	// method. The degraded answer must still match the oracle.
	g := graph.AugmentedLadder(5)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db, MaxRows: 2000, Resilient: true})

	resp := roundTrip(t, addr, &Request{
		Op: "query", Query: queryText(t, g), Method: string(core.MethodStraightforward),
	})
	if resp.Status != StatusDegraded {
		t.Fatalf("status = %s (%s), want degraded", resp.Status, resp.Error)
	}
	if resp.Stats == nil || len(resp.Stats.Attempts) < 2 {
		t.Fatalf("degraded run must record its attempts, got %+v", resp.Stats)
	}
	if resp.Stats.Attempts[0].Err == "" {
		t.Errorf("first attempt should record the failure, got %+v", resp.Stats.Attempts[0])
	}
	oracle, err := engine.EvalOracle(in.q, in.db)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer.Rows != oracle.Len() {
		t.Fatalf("degraded answer has %d rows, oracle %d", resp.Answer.Rows, oracle.Len())
	}
}

func TestShedUnderLoad(t *testing.T) {
	// One slot, no queue, and a kernel latency that keeps the slot busy:
	// concurrent requests must be shed with a typed response, fast.
	if err := faultinject.Enable("kernel.latency=200ms:1", 7); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	g := graph.AugmentedPath(3)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db, MaxConcurrent: 1, MaxQueue: -1, QueueWait: 10 * time.Millisecond})

	text := queryText(t, g)
	const n = 4
	statuses := make([]Status, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = roundTrip(t, addr, &Request{Op: "query", Query: text}).Status
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, st := range statuses {
		switch st {
		case StatusOK:
			ok++
		case StatusShed:
			shed++
		default:
			t.Errorf("unexpected status %s under overload", st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both served and shed outcomes, got ok=%d shed=%d", ok, shed)
	}
}

func TestBreakerRoutesToLadder(t *testing.T) {
	// Every direct join panics; after BreakerThreshold failures the
	// breaker opens and requests run on the ladder... but the ladder's
	// rungs also panic under this spec, so instead inject only on the
	// parallel path is not possible — use memory faults with a ladder
	// that succeeds: join.alloc fires on early calls (direct attempt),
	// later calls (ladder rungs) pass at low probability. Simplest
	// deterministic check: threshold 1, a failing first request trips
	// the breaker, and the next request is answered via the ladder even
	// though Resilient is off.
	if err := faultinject.Enable("join.alloc=1", 11); err != nil {
		t.Fatal(err)
	}
	g := graph.AugmentedPath(4)
	in := colorQuery(t, g)
	s, addr := startServer(t, Config{
		DB: in.db, BreakerThreshold: 1, BreakerCooldown: time.Minute, MaxBytes: 1 << 30,
	})
	text := queryText(t, g)

	// First request: direct path fails with ErrMemLimit (injected),
	// ladder not engaged (Resilient off, breaker still closed).
	resp := roundTrip(t, addr, &Request{Op: "query", Query: text})
	if resp.Status != StatusResourceLimit {
		t.Fatalf("first request: status = %s (%s), want resource_limit", resp.Status, resp.Error)
	}
	// Breaker is now open. Disable faults so the ladder can succeed.
	faultinject.Disable()
	resp = roundTrip(t, addr, &Request{Op: "query", Query: text})
	if resp.Status != StatusOK && resp.Status != StatusDegraded {
		t.Fatalf("second request (breaker open): status = %s (%s), want answered via ladder", resp.Status, resp.Error)
	}
	if resp.Stats == nil || len(resp.Stats.Attempts) == 0 {
		t.Fatalf("ladder-routed request must carry attempt history, got %+v", resp.Stats)
	}
	h := s.health()
	// The methodless narrow query routes to yannakakis, so that is the
	// breaker that tripped.
	if h.Breakers["yannakakis"] != "open" {
		t.Errorf("breaker state = %q, want open", h.Breakers["yannakakis"])
	}
}

func TestGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	g := graph.AugmentedPath(2)
	in := colorQuery(t, g)
	s := New(Config{DB: in.db})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	addr := s.Addr().String()

	// Conn A carries a slow in-flight query; conn B checks readiness
	// mid-drain.
	if err := faultinject.Enable("kernel.latency=150ms:1", 3); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disable()
	connA, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	connB, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	for _, c := range []net.Conn{connA, connB} {
		c.SetDeadline(time.Now().Add(10 * time.Second))
	}
	if err := WriteFrame(connA, &Request{Op: "query", Query: queryText(t, g)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the slow query start

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // draining flag is set before the wait

	// Readiness flips first: an existing connection sees ready=false
	// while the in-flight query still runs.
	if err := WriteFrame(connB, &Request{Op: "ready"}); err == nil {
		var ready Response
		if err := ReadFrame(connB, &ready); err == nil {
			if ready.Ready == nil || *ready.Ready {
				t.Errorf("readiness during drain = %+v, want false", ready.Ready)
			}
		}
	}

	// The in-flight query drains to completion with its answer.
	var resp Response
	if err := ReadFrame(connA, &resp); err != nil {
		t.Fatalf("in-flight request lost during drain: %v", err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("drained request status = %s (%s), want ok", resp.Status, resp.Error)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v after drain", err)
	}
	// New connections are refused.
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Error("dial succeeded after shutdown")
	}
	// No goroutines leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked: %d before, %d after", base, n)
	}
}

func TestStreamMethodExplicit(t *testing.T) {
	g := graph.AugmentedPath(5)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g), Method: "stream"})
	if resp.Status != StatusOK {
		t.Fatalf("status = %s (%s), want ok", resp.Status, resp.Error)
	}
	oracle, err := engine.EvalOracle(in.q, in.db)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Answer == nil || resp.Answer.Nonempty != (oracle.Len() > 0) {
		t.Fatalf("answer = %+v, oracle nonempty=%v", resp.Answer, oracle.Len() > 0)
	}
	// The streaming engine reports peak live bytes, and Bytes is that
	// same peak (not a cumulative total).
	if resp.Stats == nil || resp.Stats.PeakBytes <= 0 {
		t.Fatalf("stream stats = %+v, want positive PeakBytes", resp.Stats)
	}
	if resp.Stats.Bytes != resp.Stats.PeakBytes {
		t.Errorf("stream Bytes %d != PeakBytes %d", resp.Stats.Bytes, resp.Stats.PeakBytes)
	}
}

func TestStreamRoutingMidWidth(t *testing.T) {
	// K5 has elimination width 4: over the yannakakis cutoff (3), under
	// the stream cutoff (6). A method-less request must route to the
	// streaming engine.
	g := graph.Complete(5)
	in := colorQuery(t, g)
	var log bytes.Buffer
	_, addr := startServer(t, Config{DB: in.db, Log: &log})

	resp := roundTrip(t, addr, &Request{Op: "explain", Query: queryText(t, g)})
	if resp.Status != StatusOK {
		t.Fatalf("explain status = %s (%s)", resp.Status, resp.Error)
	}
	if !strings.HasPrefix(resp.Explain, "stream pipeline") {
		t.Fatalf("mid-width explain is not a stream pipeline:\n%s", resp.Explain)
	}
	if resp.Verdict == nil || resp.Verdict.Method != "stream" {
		t.Fatalf("verdict = %+v, want method stream", resp.Verdict)
	}

	resp = roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g)})
	if resp.Status != StatusOK {
		t.Fatalf("query status = %s (%s)", resp.Status, resp.Error)
	}
	// K5 is not 3-colorable: the Boolean answer is empty.
	if resp.Answer == nil || resp.Answer.Nonempty {
		t.Fatalf("K5 3-COLOR answer = %+v, want empty", resp.Answer)
	}
	if !strings.Contains(log.String(), `"method":"stream"`) {
		t.Errorf("request log does not record the stream method:\n%s", log.String())
	}
}

func TestStreamRoutingDisabled(t *testing.T) {
	// StreamWidth < 0 turns mid-width stream routing off: the K5 query
	// falls through to the default plan method.
	g := graph.Complete(5)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db, StreamWidth: -1})

	resp := roundTrip(t, addr, &Request{Op: "explain", Query: queryText(t, g)})
	if resp.Status != StatusOK {
		t.Fatalf("explain status = %s (%s)", resp.Status, resp.Error)
	}
	if strings.HasPrefix(resp.Explain, "stream pipeline") {
		t.Fatalf("stream routing disabled, yet explain shows a stream pipeline:\n%s", resp.Explain)
	}
}

func TestPredictedPeakAdmission(t *testing.T) {
	g := graph.AugmentedPath(4)
	in := colorQuery(t, g)
	_, addr := startServer(t, Config{DB: in.db, MaxPredictedBytes: 1})

	resp := roundTrip(t, addr, &Request{Op: "query", Query: queryText(t, g)})
	if resp.Status != StatusOverWidth {
		t.Fatalf("status = %s (%s), want over_width", resp.Status, resp.Error)
	}
	if resp.Verdict == nil || resp.Verdict.PredictedPeakBytes <= 1 {
		t.Fatalf("verdict = %+v, want PredictedPeakBytes > 1", resp.Verdict)
	}
	if resp.Verdict.MaxPredictedBytes != 1 {
		t.Errorf("verdict does not echo MaxPredictedBytes: %+v", resp.Verdict)
	}
	if resp.Stats != nil {
		t.Fatalf("byte-budget rejection carried run stats %+v", resp.Stats)
	}
}

// TestPeerDisconnectCancelsInFlightHandler pins the per-request context
// contract: a client that hangs up mid-request cancels the handler's
// context, so long-running work (a coordinator fan-out, an execution)
// stops instead of running to its full timeout for a peer that is gone.
func TestPeerDisconnectCancelsInFlightHandler(t *testing.T) {
	outcome := make(chan error, 1)
	started := make(chan struct{})
	s := New(Config{
		Handler: func(ctx context.Context, req *Request, remote string) *Response {
			close(started)
			select {
			case <-ctx.Done():
				outcome <- ctx.Err()
			case <-time.After(5 * time.Second):
				outcome <- nil
			}
			return &Response{Status: StatusOK}
		},
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, &Request{Op: "query", Query: "ignored"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(3 * time.Second):
		t.Fatal("handler never started")
	}
	conn.Close() // the client gives up mid-request

	select {
	case err := <-outcome:
		if err == nil {
			t.Fatal("handler ran to completion; peer disconnect did not cancel its context")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("handler context not canceled after peer disconnect")
	}
}

// TestPipelinedRequestsAllAnswered guards the disconnect watcher against
// eating pipelined frames: Peek must not consume the next request's
// bytes, so a client that writes several requests back-to-back before
// reading gets every answer, in order.
func TestPipelinedRequestsAllAnswered(t *testing.T) {
	s := New(Config{
		Handler: func(ctx context.Context, req *Request, remote string) *Response {
			return &Response{Status: StatusOK, Explain: req.Query}
		},
	})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if err := WriteFrame(conn, &Request{Op: "query", Query: fmt.Sprintf("q-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.Status != StatusOK || resp.Explain != fmt.Sprintf("q-%d", i) {
			t.Fatalf("response %d = %+v, want ok/q-%d", i, resp, i)
		}
	}
}
