package server

import (
	"context"
	"fmt"
	"math"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/plan"
	"projpush/internal/treedec"
)

// Width-aware admission control. The paper's theory gives the server a
// static blow-up predictor no cost-based system has: a plan's width (its
// maximum intermediate arity) is known before execution, Theorems 1–2
// bound the best achievable width by treewidth+1, and the AGM inequality
// bounds the join's output size from the relation cardinalities alone.
// Admission therefore rejects hopeless queries for the price of plan
// construction — never a materialized intermediate — instead of
// admitting everything and aborting mid-explosion.

// assess computes the admission verdict for a planned query: the chosen
// plan's width, the join graph's MCS elimination width, the AGM output
// bound, and the predicted peak live bytes of a streaming run, checked
// against the server's thresholds.
//
// wcojAGM, when positive, enables the worst-case-optimal override: a
// query whose only violation is the width threshold is admitted anyway
// (Verdict.AdmittedOnAGM) when its AGM output bound is within 2^wcojAGM
// rows, because the caller will route it to the leapfrog multiway join,
// whose work is bounded by the output bound rather than the plan width.
// The override never excuses an AGM or predicted-bytes violation: those
// bound exactly what the multiway join produces and holds resident.
//
// spillBytes ≥ 0 enables the spill override: a query whose only
// violation is the predicted-bytes threshold is admitted anyway
// (Verdict.AdmittedOnSpill) when spilling is armed and the prediction
// fits the disk budget (spillBytes, 0 = unlimited disk), because the
// executors will degrade the overage to disk latency instead of dying
// with ErrMemLimit. Pass spillBytes < 0 when spilling is disabled. The
// override never excuses a width or AGM violation: spill bounds
// residency, not the work or output size those predict.
func assess(q *cq.Query, p plan.Node, method string, maxWidth int, maxAGMLog2 float64, maxPredicted int64, wcojAGM float64, spillBytes int64, db cq.Database) *Verdict {
	v := &Verdict{
		Method:            method,
		PlanWidth:         plan.Analyze(p).Width,
		MaxWidth:          maxWidth,
		MaxAGMLog2:        maxAGMLog2,
		MaxPredictedBytes: maxPredicted,
		WCOJAGMLog2:       wcojAGM,
		Admitted:          true,
	}
	if jg, elim, err := core.EliminationOrder(q, core.OrderMCS, nil); err == nil {
		v.ElimWidth = treedec.InducedWidth(jg.G, elim)
	}
	v.AGMLog2 = agmLog2(q, db)
	v.PredictedPeakBytes = predictedPeakBytes(q, db)
	overWidth := maxWidth > 0 && v.PlanWidth > maxWidth
	overAGM := maxAGMLog2 > 0 && v.AGMLog2 > maxAGMLog2
	overPredicted := maxPredicted > 0 && v.PredictedPeakBytes > maxPredicted
	if overWidth || overAGM || overPredicted {
		v.Admitted = false
	}
	if overWidth && !overAGM && !overPredicted && wcojAGM > 0 && v.AGMLog2 <= wcojAGM {
		v.Admitted = true
		v.AdmittedOnAGM = true
	}
	if overPredicted && !overWidth && !overAGM && spillBytes >= 0 &&
		(spillBytes == 0 || v.PredictedPeakBytes <= spillBytes) {
		v.Admitted = true
		v.AdmittedOnSpill = true
	}
	return v
}

// predictedPeakBytes bounds a streaming run's peak live bytes from the
// catalog alone: each pipeline breaker (hash build, DISTINCT state)
// stores at most the needed columns of one pre-reduced base input, so
// peak residency never exceeds the referenced relations' combined
// footprint. Materializing executors can exceed this arbitrarily — their
// intermediates are bounded by the AGM term, not the inputs — which is
// exactly why byte-budget admission reasons about the streaming peak.
func predictedPeakBytes(q *cq.Query, db cq.Database) int64 {
	var total int64
	for _, a := range q.Atoms {
		if rel := db[a.Rel]; rel != nil {
			total += rel.Bytes()
		}
	}
	return total
}

// agmLog2 returns log2 of an AGM-style bound on the full join's output
// cardinality: a greedy integral edge cover of the query's variables by
// its atoms, charging log2 of each chosen relation's cardinality. The
// integral cover relaxes the AGM fractional cover, so the bound is valid
// (an upper bound on the fractional optimum) and needs no LP solver. An
// empty relation anywhere in the cover proves the answer empty (bound 0).
func agmLog2(q *cq.Query, db cq.Database) float64 {
	uncovered := make(map[cq.Var]bool)
	for _, v := range q.Vars() {
		uncovered[v] = true
	}
	var total float64
	for len(uncovered) > 0 {
		best, bestNew, bestLog := -1, 0, 0.0
		for i, a := range q.Atoms {
			n := 0
			for _, v := range a.Args {
				if uncovered[v] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			rel := db[a.Rel]
			lg := 0.0
			if rel != nil && rel.Len() > 1 {
				lg = math.Log2(float64(rel.Len()))
			}
			if rel != nil && rel.Len() == 0 {
				// An empty relation covering a live variable makes the
				// whole join empty.
				return 0
			}
			if best < 0 || n > bestNew || (n == bestNew && lg < bestLog) {
				best, bestNew, bestLog = i, n, lg
			}
		}
		if best < 0 {
			// Remaining variables occur in no atom (free-only variables
			// rejected earlier by validation); nothing more to charge.
			break
		}
		for _, v := range q.Atoms[best].Args {
			delete(uncovered, v)
		}
		total += bestLog
	}
	return total
}

// limiter is the concurrency gate in front of the executors: a semaphore
// of execution slots plus a bounded wait queue. A request that finds all
// slots busy and the queue full — or that waits out its queue budget —
// is shed immediately with engine.ErrOverloaded, so overload produces
// fast typed rejections instead of unbounded queueing and hangs.
type limiter struct {
	slots chan struct{}
	queue chan struct{}
}

func newLimiter(maxConcurrent, maxQueue int) *limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
	}
}

// acquire takes an execution slot, queueing at most until ctx is done.
// It never blocks past the queue bound: the overflow request is shed.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return fmt.Errorf("%w: %d executing, wait queue full", engine.ErrOverloaded, cap(l.slots))
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: queue wait expired", engine.ErrOverloaded)
	}
}

func (l *limiter) release() { <-l.slots }
