// Package hypertree implements a heuristic for generalized hypertree
// decompositions, the width notion of Gottlob, Leone and Scarcello that
// the paper lists among the ideas worth importing into structural query
// optimization (Section 7). A hypertree decomposition augments each bag
// of a tree decomposition with a *guard*: a set of query atoms whose
// variables cover the bag. Its width is the maximum guard size — for
// queries with wide atoms this can be far below treewidth, because one
// k-ary atom guards k variables at cost 1.
//
// Computing hypertree width exactly is NP-hard, like treewidth; the
// standard practical route — taken here — is to build a tree
// decomposition first and cover each bag greedily with atoms. The paper
// notes that for its binary-atom workloads the widths essentially
// coincide (each guard atom covers two variables); the tests verify both
// that observation and the wide-atom payoff.
package hypertree

import (
	"fmt"
	"sort"

	"projpush/internal/cq"
	"projpush/internal/joingraph"
	"projpush/internal/treedec"
)

// Decomposition is a generalized hypertree decomposition: a tree
// decomposition plus a guard (set of atom indexes) per node.
type Decomposition struct {
	// TD is the underlying tree decomposition over join-graph vertices.
	TD *treedec.Decomposition
	// Guards[i] lists indexes into the query's atom list whose variables
	// cover bag i.
	Guards [][]int
}

// Width returns the maximum guard size, the (generalized) hypertree
// width of this decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, g := range d.Guards {
		if len(g) > w {
			w = len(g)
		}
	}
	return w
}

// Validate checks the guard property: every vertex of every bag occurs
// in some guard atom of that bag.
func (d *Decomposition) Validate(q *cq.Query, jg *joingraph.JoinGraph) error {
	if len(d.Guards) != d.TD.NumNodes() {
		return fmt.Errorf("hypertree: %d guards for %d nodes", len(d.Guards), d.TD.NumNodes())
	}
	for i, bag := range d.TD.Bags {
		covered := make(map[int]bool)
		for _, ai := range d.Guards[i] {
			if ai < 0 || ai >= len(q.Atoms) {
				return fmt.Errorf("hypertree: node %d guard references atom %d", i, ai)
			}
			for _, v := range q.Atoms[ai].Args {
				covered[jg.Index[v]] = true
			}
		}
		for _, v := range bag {
			if !covered[v] {
				return fmt.Errorf("hypertree: node %d: vertex %d not covered by guard", i, v)
			}
		}
	}
	return nil
}

// Greedy builds a generalized hypertree decomposition from a tree
// decomposition of q's join graph by covering each bag with atoms
// greedily (largest uncovered-variable gain first, lowest index on
// ties). The result's width is at most the decomposition width + 1 and
// at least the optimum for this skeleton.
func Greedy(q *cq.Query, jg *joingraph.JoinGraph, td *treedec.Decomposition) (*Decomposition, error) {
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("hypertree: query has no atoms")
	}
	// Precompute each atom's vertex set.
	atomVerts := make([][]int, len(q.Atoms))
	for i, a := range q.Atoms {
		set := make([]int, 0, len(a.Args))
		for _, v := range a.Args {
			idx, ok := jg.Index[v]
			if !ok {
				return nil, fmt.Errorf("hypertree: atom %d variable x%d not in join graph", i, v)
			}
			set = append(set, idx)
		}
		sort.Ints(set)
		atomVerts[i] = set
	}

	d := &Decomposition{TD: td, Guards: make([][]int, td.NumNodes())}
	for n, bag := range td.Bags {
		uncovered := make(map[int]bool, len(bag))
		for _, v := range bag {
			uncovered[v] = true
		}
		var guard []int
		for len(uncovered) > 0 {
			best, bestGain := -1, 0
			for ai, verts := range atomVerts {
				gain := 0
				for _, v := range verts {
					if uncovered[v] {
						gain++
					}
				}
				if gain > bestGain {
					best, bestGain = ai, gain
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("hypertree: bag %d contains a vertex in no atom", n)
			}
			guard = append(guard, best)
			for _, v := range atomVerts[best] {
				delete(uncovered, v)
			}
		}
		sort.Ints(guard)
		d.Guards[n] = guard
	}
	return d, nil
}

// Estimate computes a generalized hypertree width estimate for a query:
// build the join graph, take the MCS tree decomposition, and cover
// greedily. It returns the estimated width and the decomposition.
func Estimate(q *cq.Query) (int, *Decomposition, error) {
	jg := joingraph.Build(q)
	elim := treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), nil))
	td := treedec.FromOrder(jg.G, elim)
	d, err := Greedy(q, jg, td)
	if err != nil {
		return 0, nil, err
	}
	return d.Width(), d, nil
}
