package hypertree

import (
	"math/rand"
	"testing"

	"projpush/internal/cq"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/joingraph"
	"projpush/internal/treedec"
)

func colorQ(t *testing.T, g *graph.Graph) *cq.Query {
	t.Helper()
	q, err := instance.ColorQuery(g, instance.BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestGreedyValidOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(8)
		m := n + rng.Intn(2*n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q := colorQ(t, g)
		jg := joingraph.Build(q)
		elim := treedec.EliminationOrder(treedec.MCS(jg.G, jg.Vertices(q.Free), rng))
		td := treedec.FromOrder(jg.G, elim)
		d, err := Greedy(q, jg, td)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(q, jg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Binary atoms: each guard atom covers at most 2 bag vertices,
		// so width is within [⌈(tw+1)/2⌉, tw+1].
		bagMax := td.Width() + 1
		if w := d.Width(); w > bagMax || 2*w < bagMax {
			t.Fatalf("trial %d: hypertree width %d out of range for bag size %d", trial, w, bagMax)
		}
	}
}

func TestWideAtomsCollapseWidth(t *testing.T) {
	// A clique over 6 variables as a single 6-ary atom: treewidth of the
	// join graph is 5, but one atom guards everything — hypertree width 1
	// (the classical separation between the width notions).
	q := &cq.Query{
		Atoms: []cq.Atom{{Rel: "r6", Args: []cq.Var{0, 1, 2, 3, 4, 5}}},
		Free:  []cq.Var{0},
	}
	w, d, err := Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("single-atom clique hypertree width = %d, want 1", w)
	}
	if err := d.Validate(q, joingraph.Build(q)); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleWidths(t *testing.T) {
	// A triangle of binary atoms: treewidth 2 (bags of 3), guards need
	// 2 binary atoms per 3-vertex bag.
	q := colorQ(t, graph.Cycle(3))
	w, _, err := Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("triangle hypertree width = %d, want 2", w)
	}
}

func TestPathWidthOne(t *testing.T) {
	// A path decomposes into bags of 2 covered by single edge atoms:
	// hypertree width 1, the acyclicity certificate.
	q := colorQ(t, graph.Path(8))
	w, _, err := Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("path hypertree width = %d, want 1", w)
	}
}

func TestGreedyErrors(t *testing.T) {
	q := &cq.Query{Free: []cq.Var{0}}
	jg := joingraph.Build(&cq.Query{
		Atoms: []cq.Atom{{Rel: "edge", Args: []cq.Var{0, 1}}},
		Free:  []cq.Var{0},
	})
	td := treedec.Trivial(jg.G)
	if _, err := Greedy(q, jg, td); err == nil {
		t.Fatal("accepted query with no atoms")
	}
}

func TestValidateCatchesBadGuards(t *testing.T) {
	q := colorQ(t, graph.Path(3))
	jg := joingraph.Build(q)
	td := treedec.Trivial(jg.G)
	d, err := Greedy(q, jg, td)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(q, jg); err != nil {
		t.Fatal(err)
	}
	d.Guards[0] = d.Guards[0][:1] // drop an atom: coverage breaks
	if err := d.Validate(q, jg); err == nil {
		t.Fatal("accepted uncovering guard")
	}
	d.Guards[0] = []int{99}
	if err := d.Validate(q, jg); err == nil {
		t.Fatal("accepted out-of-range guard atom")
	}
}
