// Package projpush is a structural query optimizer for project-join
// (conjunctive) queries, reproducing "Projection Pushing Revisited"
// (McMahan, Pan, Porter, Vardi; EDBT 2004).
//
// The library evaluates queries of the form π_{x1..xn}(R1 ⋈ ... ⋈ Rm)
// over in-memory databases, choosing the join/projection order with the
// paper's methods:
//
//   - Straightforward: left-deep joins in query order, one final
//     projection (the baseline a cost-based planner effectively produces).
//   - EarlyProjection: project each variable out right after its last
//     occurrence joins.
//   - Reordering: a greedy atom permutation that lets variables die as
//     early as possible, then early projection.
//   - BucketElimination: the constraint-satisfaction method under a
//     maximum-cardinality-search variable order; with an optimal order
//     its intermediate arity is treewidth(join graph)+1, the theoretical
//     optimum (Theorems 1 and 2 of the paper).
//
// The root package is a facade over the implementation packages in
// internal/: query construction, plan building, execution, SQL
// generation/parsing in the paper's dialect, and problem encoders
// (k-COLOR, k-SAT) for the paper's workloads.
//
// Quick start:
//
//	g := projpush.AugmentedPath(12)
//	res, err := projpush.Solve3Coloring(g, projpush.BucketElimination, nil)
//	// res.Nonempty() reports 3-colorability; res.Stats has arity/size
//	// instrumentation.
package projpush

import (
	"context"
	"io"
	"math/rand"
	"time"

	"projpush/internal/acyclic"
	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/cqparse"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/hypertree"
	"projpush/internal/instance"
	"projpush/internal/minibucket"
	"projpush/internal/minimize"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
	"projpush/internal/relation"
	"projpush/internal/resilience"
	"projpush/internal/sqlgen"
	"projpush/internal/sqlparse"
)

// Re-exported core types. These aliases are the public names of the
// library's data model; the internal packages carry the implementations.
type (
	// Query is a project-join query: atoms plus a target schema.
	Query = cq.Query
	// Atom binds a database relation's columns to query variables.
	Atom = cq.Atom
	// Var identifies a query variable / attribute.
	Var = cq.Var
	// Database maps relation names to relations.
	Database = cq.Database
	// Relation is an in-memory set-semantics relation.
	Relation = relation.Relation
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Value is a domain element.
	Value = relation.Value
	// Graph is a simple undirected graph (query workloads).
	Graph = graph.Graph
	// Plan is an executable project-join plan.
	Plan = plan.Node
	// Method names one of the paper's optimization methods.
	Method = core.Method
	// Result is an execution outcome with instrumentation.
	Result = engine.Result
	// ExecStats instruments one execution.
	ExecStats = engine.Stats
	// SubplanCache memoizes Join/Project subtree results across
	// executions under a renaming-invariant plan fingerprint; share one
	// via ExecOptions.Cache (safe across goroutines and executors).
	SubplanCache = engine.Cache
)

// The optimization methods, in the paper's presentation order.
const (
	Straightforward   = core.MethodStraightforward
	EarlyProjection   = core.MethodEarlyProjection
	Reordering        = core.MethodReordering
	BucketElimination = core.MethodBucketElimination
	// MethodYannakakis is the full-reducer execution strategy
	// (ExecuteYannakakis); not listed in Methods since it is not a plan
	// shape.
	MethodYannakakis = core.MethodYannakakis
	// MethodStream is the pipelined streaming execution strategy
	// (ExecuteStream): early projection's plan shape, executed with fused
	// projections, semijoin pushdown, and late materialization. Not
	// listed in Methods since it is not a plan shape.
	MethodStream = core.MethodStream
	// MethodWCOJ is the worst-case-optimal execution strategy
	// (ExecuteWCOJ): one leapfrog multiway join over sorted arena
	// indexes, whose work is bounded by the AGM output bound rather than
	// any join tree's intermediate width. Not listed in Methods since it
	// is not a plan shape.
	MethodWCOJ = core.MethodWCOJ
)

// Methods lists all optimization methods.
var Methods = core.Methods

// NewRelation returns an empty relation over the attributes.
func NewRelation(attrs []Var) *Relation { return relation.New(attrs) }

// NewSubplanCache returns a subplan result cache bounded by maxBytes of
// cached relation storage (<= 0 uses the engine default of 256 MiB).
func NewSubplanCache(maxBytes int64) *SubplanCache { return engine.NewCache(maxBytes) }

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// RandomGraph generates a uniform random graph with n vertices and m
// distinct edges.
func RandomGraph(n, m int, rng *rand.Rand) (*Graph, error) { return graph.Random(n, m, rng) }

// AugmentedPath builds Figure 1a: a path of order n with one dangling
// edge per path vertex.
func AugmentedPath(n int) *Graph { return graph.AugmentedPath(n) }

// Ladder builds Figure 1b: a ladder with n rungs.
func Ladder(n int) *Graph { return graph.Ladder(n) }

// AugmentedLadder builds Figure 1c: a ladder with a dangling edge on
// every vertex.
func AugmentedLadder(n int) *Graph { return graph.AugmentedLadder(n) }

// AugmentedCircularLadder builds Figure 1d: an augmented ladder whose
// rails are closed into cycles.
func AugmentedCircularLadder(n int) *Graph { return graph.AugmentedCircularLadder(n) }

// ColorDatabase returns the k-COLOR database: one binary "edge" relation
// with all pairs of distinct colors.
func ColorDatabase(k int) Database { return instance.ColorDatabase(k) }

// ColorQuery translates a graph into the k-COLOR query with the given
// free variables (nil free plus BooleanFree for the paper's Boolean
// emulation).
func ColorQuery(g *Graph, free []Var) (*Query, error) { return instance.ColorQuery(g, free) }

// HomomorphismDatabase returns the database for graph-homomorphism
// queries into the target graph h; with h = K_k this is k-COLOR (the
// Kolaitis–Vardi CSP connection the paper builds on).
func HomomorphismDatabase(h *Graph) Database { return instance.HomomorphismDatabase(h) }

// HomomorphismQuery translates a source graph into the query deciding
// whether it maps homomorphically into the database's target graph.
func HomomorphismQuery(g *Graph, free []Var) (*Query, error) {
	return instance.HomomorphismQuery(g, free)
}

// BooleanFree returns the paper's Boolean emulation target schema: the
// first vertex occurring in an edge.
func BooleanFree(g *Graph) []Var { return instance.BooleanFree(g) }

// ChooseFree samples the paper's non-Boolean target schema: a random
// fraction of the candidate variables.
func ChooseFree(candidates []Var, frac float64, rng *rand.Rand) []Var {
	return instance.ChooseFree(candidates, frac, rng)
}

// SAT workload types, re-exported for the k-SAT encodings of Section 7.
type (
	// SAT is a CNF formula.
	SAT = instance.SAT
	// Clause is a disjunction of literals.
	Clause = instance.Clause
	// Lit is a signed variable.
	Lit = instance.Lit
)

// RandomSAT generates a random k-SAT formula with n variables and m
// clauses.
func RandomSAT(k, n, m int, rng *rand.Rand) (*SAT, error) { return instance.RandomSAT(k, n, m, rng) }

// SATQuery translates a CNF formula into a conjunctive query over the
// clause-pattern database; the query is nonempty iff the formula is
// satisfiable.
func SATQuery(s *SAT, free []Var) (*Query, Database, error) { return instance.SATQuery(s, free) }

// SATVariables returns the variables occurring in the formula's clauses.
func SATVariables(s *SAT) []Var { return instance.SATVariablesInClauses(s) }

// BuildPlan constructs a plan for the query under the method. rng drives
// the documented random tie-breaking; nil is deterministic.
func BuildPlan(m Method, q *Query, rng *rand.Rand) (Plan, error) {
	return core.BuildPlan(m, q, rng)
}

// ValidatePlan checks that a plan faithfully evaluates the query: scans
// match atoms, projections never drop live variables, and the root schema
// is the target schema.
func ValidatePlan(p Plan, q *Query) error { return plan.Validate(p, q) }

// PlanWidth returns the plan's width: the maximum intermediate arity, the
// paper's central cost measure.
func PlanWidth(p Plan) int { return plan.Analyze(p).Width }

// ExecOptions bounds an execution.
type ExecOptions = engine.Options

// Execution failure sentinels. Every executor reports resource aborts
// through these (test with errors.Is); ErrTimeout and ErrCanceled also
// match context.DeadlineExceeded and context.Canceled respectively, so
// engine failures compose with standard context plumbing.
var (
	// ErrTimeout: the ExecOptions.Timeout or a context deadline expired.
	ErrTimeout = engine.ErrTimeout
	// ErrCanceled: the context passed to a *Context entry point was
	// canceled.
	ErrCanceled = engine.ErrCanceled
	// ErrRowLimit: an intermediate result exceeded ExecOptions.MaxRows.
	ErrRowLimit = engine.ErrRowLimit
	// ErrMemLimit: materialized bytes exceeded ExecOptions.MaxBytes.
	ErrMemLimit = engine.ErrMemLimit
	// ErrOverWidth: the serving layer's width-aware admission control
	// (internal/server, experiments.Config.MaxWidth) rejected the query
	// before executing it. Terminal: retrying cannot shrink a plan.
	ErrOverWidth = engine.ErrOverWidth
	// ErrOverloaded: the request was shed under load (queue full or
	// queue wait expired). Retryable after backoff.
	ErrOverloaded = engine.ErrOverloaded
	// ErrInternal: a panic inside an execution worker, isolated and
	// surfaced as an error (with the stack in the message).
	ErrInternal = engine.ErrInternal
)

// Execute runs a plan over a database.
func Execute(p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.Exec(p, db, opt)
}

// ExecuteContext is Execute with cancellation: the run aborts promptly
// (mid-join) when ctx is canceled or its deadline expires.
func ExecuteContext(ctx context.Context, p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecContext(ctx, p, db, opt)
}

// ExecuteParallel runs a plan with up to workers goroutines spent on
// independent subtrees and partition-parallel joins; results and stats
// are identical to Execute.
func ExecuteParallel(p Plan, db Database, opt ExecOptions, workers int) (*Result, error) {
	return engine.ExecParallel(p, db, opt, workers)
}

// ExecuteParallelContext is ExecuteParallel with cancellation; a failure
// in any subtree cancels its siblings.
func ExecuteParallelContext(ctx context.Context, p Plan, db Database, opt ExecOptions, workers int) (*Result, error) {
	return engine.ExecParallelContext(ctx, p, db, opt, workers)
}

// Fallback is one rung of an ExecuteResilient degradation ladder.
type Fallback = engine.Fallback

// Attempt records one rung tried by ExecuteResilient (Stats.Attempts).
type Attempt = engine.Attempt

// DegradationLadder is the standard fallback ladder for a query: the
// Yannakakis full reducer on narrow queries (the worst-case-optimal
// multiway join on wide ones), then the streaming executor, then early
// projection, then bucket elimination — ordered from lowest peak memory
// to most robust. rng drives bucket elimination's tie-breaking; nil is
// deterministic.
func DegradationLadder(q *Query, rng *rand.Rand) []Fallback {
	return resilience.DegradationLadder(q, rng)
}

// ExecuteResilient runs a plan and, when it fails on a resource limit
// (ErrRowLimit, ErrMemLimit) or an internal fault (ErrInternal), retries
// down the fallback ladder instead of giving up; Stats.Attempts on the
// returned result records every rung tried. Timeouts and cancellations
// are not retried.
func ExecuteResilient(ctx context.Context, p Plan, fallbacks []Fallback, db Database, opt ExecOptions, workers int) (*Result, error) {
	return engine.ExecResilient(ctx, p, fallbacks, db, opt, workers)
}

// Run is the one-call path: build the method's plan and execute it.
// MethodStream runs the pipelined streaming executor over its plan;
// MethodWCOJ runs the worst-case-optimal multiway join directly on the
// query (no binary plan is involved).
func Run(m Method, q *Query, db Database, opt ExecOptions, rng *rand.Rand) (*Result, error) {
	if m == MethodWCOJ {
		return ExecuteWCOJ(q, db, opt)
	}
	p, err := BuildPlan(m, q, rng)
	if err != nil {
		return nil, err
	}
	if m == MethodStream {
		return ExecuteStream(p, db, opt)
	}
	return Execute(p, db, opt)
}

// SQL renders a plan in the paper's SQL dialect (JOIN ... ON with
// SELECT DISTINCT subqueries).
func SQL(p Plan) (string, error) { return sqlgen.FromPlan(p) }

// NaiveSQL renders the query in the paper's naive dialect (comma FROM
// list with WHERE equalities).
func NaiveSQL(q *Query) (string, error) { return sqlgen.Naive(q) }

// ParseSQL parses the JOIN-form dialect back into a plan.
func ParseSQL(sql string) (Plan, error) { return sqlparse.Parse(sql) }

// OrderHeuristic names an elimination-order heuristic for
// tree-decomposition-based planning.
type OrderHeuristic = core.OrderHeuristic

// The elimination-order heuristics for TreeDecompositionPlan.
const (
	OrderMCS       = core.OrderMCS
	OrderMinFill   = core.OrderMinFill
	OrderMinDegree = core.OrderMinDegree
)

// TreeDecompositionPlan builds a plan through Theorem 1's constructive
// machinery: elimination order → tree decomposition → join-expression
// tree (Algorithms 2 and 3) → plan. An alternative realization of the
// same width guarantees as bucket elimination.
func TreeDecompositionPlan(q *Query, h OrderHeuristic, rng *rand.Rand) (Plan, error) {
	return core.TreeDecompositionPlan(q, h, rng)
}

// Weights assigns byte widths to attributes (Section 7's weighted-
// attribute extension).
type Weights = plan.Weights

// WeightedWidth is the maximum weighted intermediate arity of a plan.
func WeightedWidth(p Plan, w Weights) int { return plan.WeightedWidth(p, w) }

// BucketEliminationWeighted plans with a variable order that minimizes
// weighted intermediate arity instead of column count.
func BucketEliminationWeighted(q *Query, w Weights) (Plan, error) {
	return core.BucketEliminationWeighted(q, w)
}

// IsAcyclic reports whether the query's hypergraph is acyclic (GYO ear
// removal).
func IsAcyclic(q *Query) bool { return acyclic.IsAcyclic(q) }

// Yannakakis evaluates an acyclic query with full semijoin reduction and
// linear-size intermediate results; it fails on cyclic queries. It is
// the reference evaluator; ExecuteYannakakis is the governed engine
// version (limits, cancellation, stats) that also handles low-width
// cyclic queries through a tree decomposition.
func Yannakakis(q *Query, db Database) (*Relation, error) { return acyclic.Evaluate(q, db) }

// ExecuteYannakakis runs the query with the engine's Yannakakis full
// reducer: the MCS join tree is semijoin-swept bottom-up and top-down so
// every surviving tuple contributes to the answer, then evaluated bag by
// bag. Works for any query whose join tree the decomposition machinery
// produces; peak memory is proportional to the reduced inputs on
// acyclic queries. Result.Stats.ReducedTuples counts the tuples the
// sweeps removed.
func ExecuteYannakakis(ctx context.Context, q *Query, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecYannakakisContext(ctx, q, db, opt)
}

// ExplainYannakakis renders the full-reducer join tree; with analyze
// true it executes the sweep and annotates per-bag cardinalities and the
// reduced-vs-materialized totals.
func ExplainYannakakis(q *Query, db Database, opt ExecOptions, analyze bool) (string, error) {
	return engine.ExplainYannakakis(q, db, opt, analyze)
}

// ExecuteStream runs a plan on the pipelined streaming executor:
// projections fuse into scans and probes, semijoin filters pre-reduce
// every hash-join build side, and tuples materialize only at pipeline
// breakers whose bytes are released when the operator closes. Bytes on
// the returned stats is the peak of live storage (equal to PeakBytes),
// not a cumulative total — on low-selectivity queries it is a small
// fraction of the materializing executors' footprint.
func ExecuteStream(p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecStream(p, db, opt)
}

// ExecuteStreamContext is ExecuteStream with caller-driven cancellation.
func ExecuteStreamContext(ctx context.Context, p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecStreamContext(ctx, p, db, opt)
}

// ExplainStream renders the streaming operator pipeline; with analyze
// true it executes and annotates every operator with rows emitted,
// bytes held, and its peak residency, plus build and semijoin-reduction
// counts.
func ExplainStream(p Plan, db Database, opt ExecOptions, analyze bool) (string, error) {
	return engine.ExplainStream(p, db, opt, analyze)
}

// ExecuteWCOJ runs the query as one worst-case-optimal multiway join:
// a global variable order is chosen (free variables first, each block
// smallest-domain-first along an MCS order), every atom gets a sorted
// index over its arena, and the leapfrog intersection extends one
// variable at a time — bound variables are existence-checked only (early
// projection at the first complete level), so total work is governed by
// the AGM output bound, not by any join tree's intermediate width.
// Result.Stats.Seeks and Extensions instrument the intersections.
func ExecuteWCOJ(q *Query, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecWCOJ(q, db, opt)
}

// ExecuteWCOJContext is ExecuteWCOJ with caller-driven cancellation.
func ExecuteWCOJContext(ctx context.Context, q *Query, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecWCOJContext(ctx, q, db, opt)
}

// ExplainWCOJ renders the worst-case-optimal variable order (existence
// levels marked ∃); with analyze true it executes and annotates every
// level with its seek and extension counts.
func ExplainWCOJ(q *Query, db Database, opt ExecOptions, analyze bool) (string, error) {
	return engine.ExplainWCOJ(q, db, opt, analyze)
}

// MiniBucketResult is the outcome of an approximate mini-bucket run.
type MiniBucketResult = minibucket.Result

// MiniBucket runs mini-bucket elimination with the given arity bound
// under the MCS order: the result over-approximates the exact answer, and
// an empty result proves the exact answer empty.
func MiniBucket(q *Query, db Database, bound int, rng *rand.Rand) (*MiniBucketResult, error) {
	return minibucket.Evaluate(q, db, core.MCSVarOrder(q, rng), bound)
}

// HybridChoice is the hybrid optimizer's outcome: the chosen plan, the
// structural candidate that produced it, and the winning cost estimate.
type HybridChoice = core.HybridChoice

// Hybrid combines structural and cost-based optimization (the paper's
// Section 7 item): structural rewrites generate a portfolio of
// projection-pushed plans; a System-R cost model built from db's
// statistics picks the cheapest.
func Hybrid(q *Query, db Database, rng *rand.Rand) (*HybridChoice, error) {
	return core.Hybrid(q, pgplanner.NewCostModel(db), rng)
}

// StructuralReport collects the query's structural measures: treewidth
// bounds, heuristic induced widths, hypertree-width estimate, and
// per-method plan widths.
type StructuralReport = core.StructuralReport

// AnalyzeStructure computes the structural report for a query — the
// "EXPLAIN" of structural optimization, computed from schemas alone.
func AnalyzeStructure(q *Query) (*StructuralReport, error) {
	return core.AnalyzeStructure(q)
}

// HypertreeWidth estimates the query's generalized hypertree width
// (greedy atom covers over an MCS tree decomposition).
func HypertreeWidth(q *Query) (int, error) {
	w, _, err := hypertree.Estimate(q)
	return w, err
}

// Explain renders a plan as an indented operator tree; with analyze true
// it executes the plan and annotates actual cardinalities.
func Explain(p Plan, db Database, opt ExecOptions, analyze bool) (string, error) {
	return engine.Explain(p, db, opt, analyze)
}

// ExecuteIterator runs a plan on the Volcano-style iterator engine
// (PostgreSQL's execution model); results are identical to Execute.
func ExecuteIterator(p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecIterator(p, db, opt)
}

// ExecuteIteratorContext is ExecuteIterator with cancellation, checked
// between iterator ticks.
func ExecuteIteratorContext(ctx context.Context, p Plan, db Database, opt ExecOptions) (*Result, error) {
	return engine.ExecIteratorContext(ctx, p, db, opt)
}

// CQFile is a parsed query+database text file (Datalog-flavoured; see
// internal/cqparse for the format).
type CQFile = cqparse.File

// ParseCQ reads a query and its database from the text format.
func ParseCQ(r io.Reader) (*CQFile, error) { return cqparse.Parse(r) }

// ReadDIMACSGraph parses a DIMACS .col graph.
func ReadDIMACSGraph(r io.Reader) (*Graph, error) { return instance.ReadDIMACSGraph(r) }

// ReadDIMACSCNF parses a DIMACS CNF formula.
func ReadDIMACSCNF(r io.Reader) (*SAT, error) { return instance.ReadDIMACSCNF(r) }

// ContainedIn decides conjunctive-query containment q1 ⊆ q2 via the
// Chandra–Merlin canonical database, evaluated with bucket elimination.
func ContainedIn(q1, q2 *Query) (bool, error) {
	return minimize.ContainedIn(q1, q2, engine.Options{})
}

// EquivalentQueries decides mutual containment.
func EquivalentQueries(q1, q2 *Query) (bool, error) {
	return minimize.Equivalent(q1, q2, engine.Options{})
}

// MinimizeQuery returns an equivalent subquery with a minimal number of
// atoms (the Chandra–Merlin core).
func MinimizeQuery(q *Query) (*Query, error) {
	return minimize.Minimize(q, engine.Options{})
}

// Solve3Coloring decides 3-colorability of g with the given method: it
// builds the Boolean 3-COLOR query, plans it, and executes it with a
// 30-second safety timeout.
func Solve3Coloring(g *Graph, m Method, rng *rand.Rand) (*Result, error) {
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		return nil, err
	}
	return Run(m, q, ColorDatabase(3), ExecOptions{Timeout: 30 * time.Second}, rng)
}
