package projpush

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeAnalyzeStructure(t *testing.T) {
	g := Ladder(5)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	r, err := AnalyzeStructure(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.TreewidthExact != 2 {
		t.Fatalf("ladder treewidth = %d", r.TreewidthExact)
	}
	if !strings.Contains(r.String(), "plan widths") {
		t.Fatal("report rendering broken")
	}
}

func TestFacadeHypertreeWidth(t *testing.T) {
	g := AugmentedPath(6)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	w, err := HypertreeWidth(q)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Fatalf("acyclic query hypertree width = %d, want 1", w)
	}
}

func TestFacadeExplainAndIterator(t *testing.T) {
	g := Ladder(4)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(BucketElimination, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)
	out, err := Explain(p, db, ExecOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=") {
		t.Fatalf("explain analyze output:\n%s", out)
	}
	a, err := Execute(p, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteIterator(p, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.Equal(b.Rel) {
		t.Fatal("iterator engine disagrees through the facade")
	}
}

func TestFacadeTreeDecompositionPlan(t *testing.T) {
	g := AugmentedCircularLadder(4)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []OrderHeuristic{OrderMCS, OrderMinFill, OrderMinDegree} {
		p, err := TreeDecompositionPlan(q, h, nil)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if err := ValidatePlan(p, q); err != nil {
			t.Fatalf("%s: %v", h, err)
		}
	}
}

func TestFacadeWeighted(t *testing.T) {
	g := Ladder(4)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	w := Weights{ByVar: map[Var]int{0: 10}, Default: 1}
	p, err := BucketEliminationWeighted(q, w)
	if err != nil {
		t.Fatal(err)
	}
	if WeightedWidth(p, w) < PlanWidth(p) {
		t.Fatal("weighted width below column count with weights >= 1")
	}
}

func TestFacadeMiniBucketAndYannakakis(t *testing.T) {
	g := AugmentedPath(5)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)
	if !IsAcyclic(q) {
		t.Fatal("augmented path query must be acyclic")
	}
	y, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := MiniBucket(q, db, q.NumVars(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !mb.Exact || !mb.Rel.Equal(y) {
		t.Fatal("exact mini-bucket and Yannakakis disagree")
	}
}

func TestFacadeContainmentAndMinimize(t *testing.T) {
	e := func(u, v Var) Atom { return Atom{Rel: "edge", Args: []Var{u, v}} }
	q := &Query{Atoms: []Atom{e(0, 1), e(0, 1), e(1, 2)}, Free: []Var{0}}
	min, err := MinimizeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 2 {
		t.Fatalf("minimized to %d atoms", len(min.Atoms))
	}
	eq, err := EquivalentQueries(q, min)
	if err != nil || !eq {
		t.Fatalf("equivalence: %v %v", eq, err)
	}
	sub := &Query{Atoms: []Atom{e(0, 1)}, Free: []Var{0}}
	ok, err := ContainedIn(q, sub)
	if err != nil || !ok {
		t.Fatalf("q ⊆ sub: %v %v", ok, err)
	}
}

func TestFacadeDIMACS(t *testing.T) {
	g, err := ReadDIMACSGraph(strings.NewReader("p edge 3 2\ne 1 2\ne 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("graph: %v", g)
	}
	s, err := ReadDIMACSCNF(strings.NewReader("p cnf 2 1\n1 -2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars != 2 || len(s.Clauses) != 1 {
		t.Fatalf("cnf: %+v", s)
	}
}

func TestFacadeSATPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, err := RandomSAT(3, 8, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	vars := SATVariables(s)
	q, db, err := SATQuery(s, vars[:1])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(BucketElimination, q, db, ExecOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = res.Nonempty() // both outcomes valid; the call path is the test
}

func TestFacadeHybrid(t *testing.T) {
	g := AugmentedLadder(5)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)
	choice, err := Hybrid(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Candidate == "" {
		t.Fatal("no candidate chosen")
	}
	if err := ValidatePlan(choice.Plan, q); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(choice.Plan, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonempty() {
		t.Fatal("augmented ladder is 3-colorable")
	}
}

func TestFacadeResourceGovernor(t *testing.T) {
	g := AugmentedCircularLadder(4)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)
	p, err := BuildPlan(Straightforward, q, nil)
	if err != nil {
		t.Fatal(err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(pre, p, db, ExecOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ExecuteContext pre-canceled: err = %v, want ErrCanceled", err)
	}
	if _, err := ExecuteParallelContext(pre, p, db, ExecOptions{}, 2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ExecuteParallelContext pre-canceled: err = %v, want ErrCanceled", err)
	}
	if _, err := ExecuteIteratorContext(pre, p, db, ExecOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ExecuteIteratorContext pre-canceled: err = %v, want ErrCanceled", err)
	}

	// A tiny byte budget fails the straightforward plan with ErrMemLimit;
	// ExecuteResilient rescues it down the ladder.
	tight := ExecOptions{MaxBytes: 1 << 10}
	if _, err := Execute(p, db, tight); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("Execute under 1KiB budget: err = %v, want ErrMemLimit", err)
	}
	res, err := ExecuteResilient(context.Background(), p, DegradationLadder(q, nil), db, ExecOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Attempts) != 1 || res.Stats.Attempts[0].Method != "given" {
		t.Fatalf("unconstrained resilient run attempts = %+v, want the given plan only", res.Stats.Attempts)
	}
	if !res.Nonempty() {
		t.Fatal("augmented circular ladder is 3-colorable")
	}
}

func TestFacadeStream(t *testing.T) {
	g := AugmentedLadder(4)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)

	res, err := Run(MethodStream, q, db, ExecOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(BucketElimination, q, db, ExecOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel.Equal(ref.Rel) {
		t.Fatal("streaming and bucket-elimination answers disagree")
	}
	// Streaming stats report peak live bytes, not a cumulative total.
	if res.Stats.PeakBytes <= 0 || res.Stats.Bytes != res.Stats.PeakBytes {
		t.Fatalf("stream stats Bytes=%d PeakBytes=%d, want equal positive peaks",
			res.Stats.Bytes, res.Stats.PeakBytes)
	}

	p, err := BuildPlan(MethodStream, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExplainStream(p, db, ExecOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "stream pipeline") || !strings.Contains(out, "rows=") {
		t.Fatalf("ExplainStream analyze output:\n%s", out)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteStreamContext(ctx, p, db, ExecOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ExecuteStreamContext pre-canceled: err = %v, want ErrCanceled", err)
	}
}
