package projpush

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
)

// Out-of-core benchmarks: the chain and spider shapes run under a memory
// budget the in-memory streaming engine cannot meet, so every iteration
// is rescued by the spill path. The quantities under test are the disk
// traffic the rescue costs (spilled-bytes, spill-files) and the residency
// bound it buys: peak live bytes (stats-bytes) must stay within MaxBytes.
// `make bench-json` pins the series in BENCH_spill.json. Each benchmark
// first proves, outside the timer, that the same budget genuinely fails
// without a spill directory.

// runSpillVariant finds a demonstrating budget (plain run dies with
// ErrMemLimit, spill-armed run completes), then times the spill-armed
// runs.
func runSpillVariant(b *testing.B, q *cq.Query, db cq.Database) {
	b.Helper()
	p, err := core.BuildPlan(core.MethodStream, q, nil)
	if err != nil {
		b.Fatal(err)
	}
	base, err := engine.ExecStream(p, db, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var budget int64
	for _, f := range []struct{ num, den int64 }{
		{7, 8}, {3, 4}, {1, 2}, {1, 3}, {1, 4}, {1, 6}, {1, 8},
	} {
		cand := base.Stats.PeakBytes * f.num / f.den
		if _, err := engine.ExecStream(p, db, engine.Options{MaxBytes: cand}); !errors.Is(err, engine.ErrMemLimit) {
			continue
		}
		res, err := engine.ExecStream(p, db, engine.Options{MaxBytes: cand, SpillDir: b.TempDir()})
		if err != nil {
			continue
		}
		if res.Stats.SpilledBytes > 0 {
			budget = cand
			break
		}
	}
	if budget == 0 {
		b.Fatalf("no budget under peak %d fails in memory and completes with spill traffic", base.Stats.PeakBytes)
	}
	opt := engine.Options{MaxBytes: budget, SpillDir: b.TempDir()}
	var stats engine.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.ExecStream(p, db, opt)
		if err != nil {
			b.Fatalf("spill-armed run aborted: %v", err)
		}
		if res.Stats.Bytes > budget {
			b.Fatalf("peak live bytes %d over budget %d despite spilling", res.Stats.Bytes, budget)
		}
		stats = res.Stats
	}
	b.ReportMetric(float64(budget), "budget-bytes")
	b.ReportMetric(float64(stats.Bytes), "stats-bytes")
	b.ReportMetric(float64(stats.PeakBytes), "peak-bytes")
	b.ReportMetric(float64(stats.SpilledBytes), "spilled-bytes")
	b.ReportMetric(float64(stats.SpillFiles), "spill-files")
}

// BenchmarkSpillChain is the Figure-6 chain shape without a selective
// head: every join's build side is full-size, so the run's resident state
// dwarfs any fractional budget and the breakers must shed partitions to
// disk.
func BenchmarkSpillChain(b *testing.B) {
	const atoms, rows, dom = 6, 4000, 3000
	rng := rand.New(rand.NewSource(11))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i := 0; i < atoms; i++ {
		name := fmt.Sprintf("r%d", i)
		db[name] = randomRel(rng, rows, dom, dom)
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(i), cq.Var(i + 1)}})
	}
	runSpillVariant(b, q, db)
}

// BenchmarkSpillSpider is the two-level star with no selective arm and a
// dense domain: the arm joins (not the semijoin-pushdown indexes, which
// cannot spill) dominate residency, so the breakers shed build partitions
// to disk and replay them under budget.
func BenchmarkSpillSpider(b *testing.B) {
	const arms, rows, dom = 4, 6000, 800
	rng := rand.New(rand.NewSource(13))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0}}
	for i := 0; i < arms; i++ {
		inner, outer := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		y, z := cq.Var(1+2*i), cq.Var(2+2*i)
		db[inner] = randomRel(rng, rows, dom, dom)
		db[outer] = randomRel(rng, rows, dom, dom)
		q.Atoms = append(q.Atoms,
			cq.Atom{Rel: inner, Args: []cq.Var{0, y}},
			cq.Atom{Rel: outer, Args: []cq.Var{y, z}})
	}
	runSpillVariant(b, q, db)
}
