// Mediator: the paper's motivating setting (Section 1) and its stated
// next step (Section 7) — queries with a large number of relations of
// varying arities and sizes, as produced by mediator-based data
// integration systems. This example synthesizes a 40-source integration
// query: a backbone chain of binary "link" sources interleaved with
// ternary "fact" sources and unary "filter" sources, over domains of a
// few dozen values, then compares the optimization methods.
//
//	go run ./examples/mediator
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"projpush"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	q, db := buildMediatorQuery(rng, 40)

	fmt.Printf("mediator query: %d source relations, %d variables\n", len(q.Atoms), q.NumVars())
	arities := map[int]int{}
	for _, rel := range db {
		arities[rel.Arity()]++
	}
	fmt.Printf("source arities: %d unary, %d binary, %d ternary\n\n",
		arities[1], arities[2], arities[3])
	fmt.Printf("%-18s %-7s %-14s %-10s %s\n", "method", "width", "time", "max rows", "result")

	for _, m := range projpush.Methods {
		p, err := projpush.BuildPlan(m, q, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := projpush.Execute(p, db, projpush.ExecOptions{
			Timeout: 10 * time.Second,
			MaxRows: 3_000_000,
		})
		if err != nil {
			fmt.Printf("%-18s %-7d %v\n", m, projpush.PlanWidth(p), err)
			continue
		}
		fmt.Printf("%-18s %-7d %-14v %-10d %d tuples\n",
			m, projpush.PlanWidth(p), res.Stats.Elapsed.Round(time.Microsecond),
			res.Stats.MaxRows, res.Rel.Len())
	}
}

// buildMediatorQuery synthesizes a data-integration query over k sources.
// Variables form a backbone v0, v1, ..., with side variables hanging off
// it; the target schema exposes the two backbone endpoints.
func buildMediatorQuery(rng *rand.Rand, k int) (*projpush.Query, projpush.Database) {
	const domain = 24
	db := make(projpush.Database)
	q := &projpush.Query{}
	nextVar := 0
	fresh := func() projpush.Var { nextVar++; return nextVar - 1 }

	// randomRelation fills a relation of the given arity with n tuples.
	randomRelation := func(name string, arity, n int) {
		attrs := make([]projpush.Var, arity)
		for i := range attrs {
			attrs[i] = i
		}
		rel := projpush.NewRelation(attrs)
		for i := 0; i < n; i++ {
			t := make(projpush.Tuple, arity)
			for j := range t {
				t[j] = projpush.Value(rng.Intn(domain))
			}
			rel.Add(t)
		}
		db[name] = rel
	}

	backbone := fresh()
	first := backbone
	for i := 0; i < k; i++ {
		switch i % 3 {
		case 0: // binary link: backbone -> new backbone
			name := fmt.Sprintf("link%d", i)
			randomRelation(name, 2, 60+rng.Intn(120))
			next := fresh()
			q.Atoms = append(q.Atoms, projpush.Atom{Rel: name, Args: []projpush.Var{backbone, next}})
			backbone = next
		case 1: // ternary fact: backbone with two side attributes
			name := fmt.Sprintf("fact%d", i)
			randomRelation(name, 3, 120+rng.Intn(240))
			s1, s2 := fresh(), fresh()
			q.Atoms = append(q.Atoms, projpush.Atom{Rel: name, Args: []projpush.Var{backbone, s1, s2}})
		case 2: // unary filter on the backbone
			name := fmt.Sprintf("filter%d", i)
			randomRelation(name, 1, domain/2+rng.Intn(domain/2))
			q.Atoms = append(q.Atoms, projpush.Atom{Rel: name, Args: []projpush.Var{backbone}})
		}
	}
	q.Free = []projpush.Var{first, backbone}
	return q, db
}
