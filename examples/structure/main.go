// Structure: the analysis side of the library — for each query family,
// print the structural report (treewidth bounds, heuristic induced
// widths, hypertree-width estimate, per-method plan widths) and an
// EXPLAIN ANALYZE of the bucket-elimination plan. Everything except the
// EXPLAIN row counts is computed from schemas alone: the paper's central
// point is that these data-independent numbers predict execution cost.
//
//	go run ./examples/structure
package main

import (
	"fmt"
	"log"

	"projpush"
)

func main() {
	cases := []struct {
		name string
		g    *projpush.Graph
	}{
		{"augmented path, order 8", projpush.AugmentedPath(8)},
		{"ladder, order 6", projpush.Ladder(6)},
		{"augmented circular ladder, order 5", projpush.AugmentedCircularLadder(5)},
	}
	for _, c := range cases {
		q, err := projpush.ColorQuery(c.g, projpush.BooleanFree(c.g))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := projpush.AnalyzeStructure(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s", c.name, rep)

		hw, err := projpush.HypertreeWidth(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generalized hypertree width (greedy): %d\n\n", hw)
	}

	// EXPLAIN ANALYZE of the bucket plan for the last case: the plan
	// tree with actual cardinalities, all tiny because the width is.
	g := projpush.Ladder(4)
	q, err := projpush.ColorQuery(g, projpush.BooleanFree(g))
	if err != nil {
		log.Fatal(err)
	}
	p, err := projpush.BuildPlan(projpush.BucketElimination, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	out, err := projpush.Explain(p, projpush.ColorDatabase(3), projpush.ExecOptions{}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== EXPLAIN ANALYZE: bucket elimination on ladder(4) ==\n%s", out)
}
