// Minimization: join minimization à la Chandra–Merlin, the application
// the paper's concluding remarks point at. A conjunctive query is
// minimized by evaluating it over its own canonical database — a
// project-join query over a tiny database, so bucket elimination is the
// natural engine for the homomorphism tests.
//
//	go run ./examples/minimization
package main

import (
	"fmt"
	"log"

	"projpush"
)

func main() {
	edge := func(u, v projpush.Var) projpush.Atom {
		return projpush.Atom{Rel: "edge", Args: []projpush.Var{u, v}}
	}

	cases := []struct {
		name string
		q    *projpush.Query
	}{
		{
			"duplicated atoms",
			&projpush.Query{
				Atoms: []projpush.Atom{edge(0, 1), edge(0, 1), edge(1, 2), edge(1, 2)},
				Free:  []projpush.Var{0},
			},
		},
		{
			"redundant branches folding onto a path",
			&projpush.Query{
				Atoms: []projpush.Atom{edge(0, 1), edge(0, 2), edge(2, 3), edge(0, 4), edge(4, 5)},
				Free:  []projpush.Var{0},
			},
		},
		{
			"a directed 4-cycle (its own core)",
			&projpush.Query{
				Atoms: []projpush.Atom{edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 0)},
			},
		},
		{
			"4-cycle with a chord shortcut",
			&projpush.Query{
				Atoms: []projpush.Atom{edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 0), edge(1, 0)},
			},
		},
	}

	for _, c := range cases {
		min, err := projpush.MinimizeQuery(c.q)
		if err != nil {
			log.Fatal(err)
		}
		equiv, err := projpush.EquivalentQueries(c.q, min)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  original:  %v\n  minimized: %v\n  atoms %d -> %d, equivalent=%v\n\n",
			c.name, c.q, min, len(c.q.Atoms), len(min.Atoms), equiv)
	}

	// Containment between chains: a longer chain is contained in a
	// shorter one (fewer constraints = more answers for the shorter).
	chain := func(k int) *projpush.Query {
		q := &projpush.Query{Free: []projpush.Var{0}}
		for i := 0; i < k; i++ {
			q.Atoms = append(q.Atoms, edge(i, i+1))
		}
		return q
	}
	long, short := chain(5), chain(2)
	a, err := projpush.ContainedIn(long, short)
	if err != nil {
		log.Fatal(err)
	}
	b, err := projpush.ContainedIn(short, long)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain5 ⊆ chain2: %v (want true)\nchain2 ⊆ chain5: %v\n", a, b)
}
