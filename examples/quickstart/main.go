// Quickstart: build a project-join query, optimize it with each of the
// paper's methods, and compare plan widths and execution statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"projpush"
)

func main() {
	// An augmented ladder of order 8: 32 vertices, 38 edges. Deciding
	// 3-colorability is the query π_{v0}(⋈ edge(vi,vj)).
	g := projpush.AugmentedLadder(8)
	q, err := projpush.ColorQuery(g, projpush.BooleanFree(g))
	if err != nil {
		log.Fatal(err)
	}
	db := projpush.ColorDatabase(3)

	fmt.Printf("query: %d atoms over %d variables\n\n", len(q.Atoms), q.NumVars())
	fmt.Printf("%-18s %-7s %-14s %-10s %s\n", "method", "width", "time", "max rows", "answer")

	for _, m := range projpush.Methods {
		p, err := projpush.BuildPlan(m, q, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := projpush.Execute(p, db, projpush.ExecOptions{
			Timeout: 10 * time.Second,
			MaxRows: 5_000_000,
		})
		if err != nil {
			fmt.Printf("%-18s %-7d %s\n", m, projpush.PlanWidth(p), err)
			continue
		}
		answer := "not 3-colorable"
		if res.Nonempty() {
			answer = "3-colorable"
		}
		fmt.Printf("%-18s %-7d %-14v %-10d %s\n",
			m, projpush.PlanWidth(p), res.Stats.Elapsed.Round(time.Microsecond),
			res.Stats.MaxRows, answer)
	}

	// The bucket-elimination plan is also available as the SQL the paper
	// would ship to PostgreSQL.
	p, err := projpush.BuildPlan(projpush.BucketElimination, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	sql, err := projpush.SQL(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbucket-elimination SQL (first lines):\n%s\n", firstLines(sql, 6))
}

func firstLines(s string, n int) string {
	out := ""
	for i, line := range splitLines(s) {
		if i >= n {
			return out + "   ..."
		}
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
