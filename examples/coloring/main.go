// Coloring: enumerate actual graph colorings through non-Boolean
// project-join queries, and watch how treewidth — not graph size — drives
// the cost of bucket elimination.
//
// The example colors three graphs of very different shapes, keeping a few
// vertices free so the query returns the possible color combinations for
// them, and prints the join-graph width bucket elimination achieved.
//
//	go run ./examples/coloring
package main

import (
	"fmt"
	"log"
	"time"

	"projpush"
)

func main() {
	cases := []struct {
		name string
		g    *projpush.Graph
		free []projpush.Var
	}{
		{"path with dangles (treewidth 1)", projpush.AugmentedPath(12), []projpush.Var{0, 11}},
		{"ladder (treewidth 2)", projpush.Ladder(10), []projpush.Var{0, 19}},
		{"augmented circular ladder (treewidth 3)", projpush.AugmentedCircularLadder(8), []projpush.Var{0, 15}},
	}

	for _, c := range cases {
		q, err := projpush.ColorQuery(c.g, c.free)
		if err != nil {
			log.Fatal(err)
		}
		p, err := projpush.BuildPlan(projpush.BucketElimination, q, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := projpush.Execute(p, projpush.ColorDatabase(3), projpush.ExecOptions{
			Timeout: 10 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  %v, %d atoms; bucket-elimination width %d\n",
			c.g, len(q.Atoms), projpush.PlanWidth(p))
		fmt.Printf("  colorings of free vertices %v (%v):\n", c.free,
			res.Stats.Elapsed.Round(time.Microsecond))
		for _, t := range res.Rel.SortedTuples() {
			fmt.Printf("    v%d=%d v%d=%d\n", c.free[0], t[0], c.free[1], t[1])
		}
		fmt.Println()
	}

	// A non-3-colorable graph: the odd wheel. The query result is empty.
	wheel := projpush.NewGraph(6)
	for i := 1; i <= 5; i++ {
		wheel.AddEdge(0, i)
		wheel.AddEdge(i, i%5+1)
	}
	res, err := projpush.Solve3Coloring(wheel, projpush.BucketElimination, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("odd wheel W5: 3-colorable = %v (an odd wheel never is)\n", res.Nonempty())
}
