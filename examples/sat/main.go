// SAT: solve random 3-SAT and 2-SAT formulas as project-join queries, the
// workloads the paper's concluding remarks report as consistent with the
// 3-COLOR results. Each clause becomes one atom over a 7-tuple (3-SAT) or
// 3-tuple (2-SAT) clause-pattern relation; satisfiability is query
// nonemptiness.
//
//	go run ./examples/sat
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"projpush"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	fmt.Println("random 3-SAT, 16 variables, density sweep (bucket elimination):")
	fmt.Printf("%-9s %-9s %-7s %-12s %s\n", "density", "clauses", "width", "time", "answer")
	for _, density := range []float64{1, 2, 3, 4, 4.26, 5, 6} {
		n := 16
		m := int(density*float64(n) + 0.5)
		s, err := projpush.RandomSAT(3, n, m, rng)
		if err != nil {
			log.Fatal(err)
		}
		vars := projpush.SATVariables(s)
		q, db, err := projpush.SATQuery(s, vars[:1])
		if err != nil {
			log.Fatal(err)
		}
		p, err := projpush.BuildPlan(projpush.BucketElimination, q, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := projpush.Execute(p, db, projpush.ExecOptions{Timeout: 20 * time.Second})
		if err != nil {
			fmt.Printf("%-9.2f %-9d %-7d %v\n", density, m, projpush.PlanWidth(p), err)
			continue
		}
		answer := "UNSAT"
		if res.Nonempty() {
			answer = "SAT"
		}
		fmt.Printf("%-9.2f %-9d %-7d %-12v %s\n",
			density, m, projpush.PlanWidth(p),
			res.Stats.Elapsed.Round(time.Microsecond), answer)
	}

	// 2-SAT: polynomial-time decidable; the project-join route handles it
	// with small widths too.
	fmt.Println("\nrandom 2-SAT, 20 variables:")
	for _, density := range []float64{0.5, 1.0, 1.5, 2.0} {
		n := 20
		m := int(density * float64(n))
		s, err := projpush.RandomSAT(2, n, m, rng)
		if err != nil {
			log.Fatal(err)
		}
		vars := projpush.SATVariables(s)
		q, db, err := projpush.SATQuery(s, vars[:1])
		if err != nil {
			log.Fatal(err)
		}
		res, err := projpush.Run(projpush.BucketElimination, q, db, projpush.ExecOptions{
			Timeout: 10 * time.Second,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		answer := "UNSAT"
		if res.Nonempty() {
			answer = "SAT"
		}
		fmt.Printf("  density %.1f (%d clauses): %s in %v\n",
			density, m, answer, res.Stats.Elapsed.Round(time.Microsecond))
	}

	// A formula with a forced contradiction, to show UNSAT detection:
	// (x0) ∧ (¬x0) expressed as width-2 clauses via a fresh variable.
	contr := &projpush.SAT{NumVars: 3, Clauses: []projpush.Clause{
		{{Var: 0, Pos: true}, {Var: 1, Pos: true}},
		{{Var: 0, Pos: true}, {Var: 1, Pos: false}},
		{{Var: 0, Pos: false}, {Var: 2, Pos: true}},
		{{Var: 0, Pos: false}, {Var: 2, Pos: false}},
	}}
	vars := projpush.SATVariables(contr)
	q, db, err := projpush.SATQuery(contr, vars[:1])
	if err != nil {
		log.Fatal(err)
	}
	res, err := projpush.Run(projpush.BucketElimination, q, db, projpush.ExecOptions{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforced contradiction: satisfiable = %v (want false)\n", res.Nonempty())
}
