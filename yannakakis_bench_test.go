package projpush

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/relation"
)

// Yannakakis-vs-bucket-elimination benchmarks on acyclic Figure-6–9-style
// workloads with selective data — the regime the full reducer exists for.
// On 3-COLOR the edge relation is complete over the colors and semijoins
// delete nothing, so these workloads use per-atom random relations with a
// selective atom: the plan methods materialize unreduced intermediates,
// the sweep deletes the non-contributing tuples first. `make bench-json`
// pins the series in BENCH_yannakakis.json; the stats-bytes metric is the
// peak Stats.Bytes acceptance signal (B/op tracks it in the JSON).

var ybenchOpts = engine.Options{Timeout: 30 * time.Second, MaxRows: 20_000_000}

// runYMethod executes q b.N times under the method, reporting the
// engine's materialized-bytes and peak-rows instrumentation.
func runYMethod(b *testing.B, m core.Method, q *cq.Query, db cq.Database) {
	b.Helper()
	var bytes int64
	var maxRows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *engine.Result
		var err error
		if m == core.MethodYannakakis {
			res, err = engine.ExecYannakakis(q, db, ybenchOpts)
		} else {
			p, perr := core.BuildPlan(m, q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.Exec(p, db, ybenchOpts)
		}
		if err != nil {
			b.Fatalf("%s aborted: %v", m, err)
		}
		bytes = res.Stats.Bytes
		if res.Stats.MaxRows > maxRows {
			maxRows = res.Stats.MaxRows
		}
	}
	b.ReportMetric(float64(bytes), "stats-bytes")
	b.ReportMetric(float64(maxRows), "maxrows")
}

func yMethods(b *testing.B, q *cq.Query, db cq.Database) {
	for _, m := range []core.Method{core.MethodYannakakis, core.MethodBucketElimination, core.MethodEarlyProjection} {
		m := m
		b.Run(string(m), func(b *testing.B) { runYMethod(b, m, q, db) })
	}
}

// randomRel builds a binary relation with rows random tuples, columns
// drawn from the two domains.
func randomRel(rng *rand.Rand, rows, domA, domB int) *relation.Relation {
	r := relation.New([]relation.Attr{0, 1})
	for i := 0; i < rows; i++ {
		r.Add(relation.Tuple{relation.Value(rng.Intn(domA)), relation.Value(rng.Intn(domB))})
	}
	return r
}

// BenchmarkYannakakisChain is the Figure-6 path shape with a selective
// head at the free end: bucket elimination eliminates from the far end,
// so every middle bucket joins a nearly unreduced relation and the
// 10-tuple head prunes only the very last join, while the top-down sweep
// pushes the head's bindings across the whole chain before any join runs.
// The domain matches the row count so selectivity propagates hop to hop
// instead of saturating.
func BenchmarkYannakakisChain(b *testing.B) {
	const atoms, rows, dom = 8, 6000, 4000
	rng := rand.New(rand.NewSource(3))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i := 0; i < atoms; i++ {
		name := fmt.Sprintf("r%d", i)
		rel := randomRel(rng, rows, dom, dom)
		if i == 0 {
			rel = randomRel(rng, 10, dom, dom) // the selective head
		}
		db[name] = rel
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(i), cq.Var(i + 1)}})
	}
	yMethods(b, q, db)
}

// BenchmarkYannakakisSpider is a two-level star (center x0, arms
// x0—y_i—z_i) with one selective outer arm: bucket elimination
// materializes each inner relation nearly in full when eliminating the
// y_i (the selective arm's pruning reaches the other arms only at the
// very last join), while the top-down sweep shrinks every arm to the few
// surviving center values before any join runs.
func BenchmarkYannakakisSpider(b *testing.B) {
	const arms, rows, dom = 5, 5000, 2000
	rng := rand.New(rand.NewSource(5))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0}}
	for i := 0; i < arms; i++ {
		inner, outer := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		y, z := cq.Var(1+2*i), cq.Var(2+2*i)
		db[inner] = randomRel(rng, rows, dom, dom)
		if i == 0 {
			db[outer] = randomRel(rng, 8, dom, dom) // the selective arm
		} else {
			db[outer] = randomRel(rng, rows, dom, dom)
		}
		q.Atoms = append(q.Atoms,
			cq.Atom{Rel: inner, Args: []cq.Var{0, y}},
			cq.Atom{Rel: outer, Args: []cq.Var{y, z}})
	}
	yMethods(b, q, db)
}

// BenchmarkYannakakisAugPath is the Figure-6 augmented path with
// selective dangling edges: every path vertex carries a dangling atom
// whose relation admits only a few path-vertex values, so the sweeps
// shrink each path relation long before any join runs.
func BenchmarkYannakakisAugPath(b *testing.B) {
	const order, rows, dom = 10, 4000, 80
	g := graph.AugmentedPath(order)
	rng := rand.New(rand.NewSource(7))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i, e := range g.Edges {
		name := fmt.Sprintf("e%d", i)
		dangling := e[1] >= order // dangling partners are numbered after the path
		if dangling {
			r := relation.New([]relation.Attr{0, 1})
			for j := 0; j < 12; j++ {
				r.Add(relation.Tuple{relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))})
			}
			db[name] = r
		} else {
			db[name] = randomRel(rng, rows, dom, dom)
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(e[0]), cq.Var(e[1])}})
	}
	yMethods(b, q, db)
}
