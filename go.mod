module projpush

go 1.22
