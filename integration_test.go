package projpush

import (
	"math/rand"
	"testing"
	"time"

	"projpush/internal/acyclic"
	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/instance"
	"projpush/internal/minibucket"
	"projpush/internal/pgplanner"
	"projpush/internal/plan"
	"projpush/internal/sqlgen"
	"projpush/internal/sqlparse"
)

// TestIntegrationAllPathsAgree drives every evaluation path in the
// repository over a matrix of instances and checks they all compute the
// same relation: the four paper methods, the tree-decomposition planner
// under each heuristic, the naive planner-ordered plan, the SQL
// generate→parse→execute round trip, Yannakakis on acyclic queries,
// exact mini-buckets, and the backtracking oracle as ground truth.
func TestIntegrationAllPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	db := instance.ColorDatabase(3)
	opts := engine.Options{Timeout: 30 * time.Second, MaxRows: 2_000_000}

	type inst struct {
		name string
		g    *graph.Graph
	}
	instances := []inst{
		{"path", graph.Path(7)},
		{"cycle", graph.Cycle(6)},
		{"augpath", graph.AugmentedPath(4)},
		{"ladder", graph.Ladder(4)},
		{"augladder", graph.AugmentedLadder(3)},
		{"augcircladder", graph.AugmentedCircularLadder(3)},
		{"wheel", graph.Wheel(5)},
		{"K4", graph.Complete(4)},
	}
	for i := 0; i < 4; i++ {
		n := 5 + rng.Intn(4)
		m := n + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g, err := graph.Random(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, inst{"random", g})
	}

	for _, in := range instances {
		for _, boolean := range []bool{true, false} {
			var free []cq.Var
			if boolean {
				free = instance.BooleanFree(in.g)
			} else {
				free = instance.ChooseFree(instance.EdgeVertices(in.g), 0.2, rng)
			}
			q, err := instance.ColorQuery(in.g, free)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.EvalOracle(q, db)
			if err != nil {
				t.Fatal(err)
			}

			check := func(name string, got interface {
				Equal(*Relation) bool
			}) {
				t.Helper()
				if !want.Equal(got.(*Relation)) {
					t.Errorf("%s boolean=%v: %s disagrees with oracle", in.name, boolean, name)
				}
			}

			// The four paper methods.
			for _, m := range core.Methods {
				p, err := core.BuildPlan(m, q, rng)
				if err != nil {
					t.Fatal(err)
				}
				if err := plan.Validate(p, q); err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				res, err := engine.Exec(p, db, opts)
				if err != nil {
					t.Fatalf("%s %s: %v", in.name, m, err)
				}
				check(string(m), res.Rel)

				// SQL round trip (SQL needs at least one column).
				if len(q.Free) > 0 {
					sql, err := sqlgen.FromPlan(p)
					if err != nil {
						t.Fatal(err)
					}
					back, err := sqlparse.Parse(sql)
					if err != nil {
						t.Fatalf("%s %s: parse: %v", in.name, m, err)
					}
					res2, err := engine.Exec(back, db, opts)
					if err != nil {
						t.Fatal(err)
					}
					check(string(m)+"/sql-roundtrip", res2.Rel)
				}
			}

			// Tree-decomposition planning under each heuristic.
			for _, h := range []core.OrderHeuristic{core.OrderMCS, core.OrderMinFill, core.OrderMinDegree} {
				p, err := core.TreeDecompositionPlan(q, h, rng)
				if err != nil {
					t.Fatal(err)
				}
				res, err := engine.Exec(p, db, opts)
				if err != nil {
					t.Fatal(err)
				}
				check("treedec/"+string(h), res.Rel)
			}

			// Naive: planner-chosen order, straightforward shape.
			cm := pgplanner.NewCostModel(db)
			pr, err := pgplanner.Plan(q, cm, rng, pgplanner.Options{})
			if err != nil {
				t.Fatal(err)
			}
			np, err := core.StraightforwardOrder(q, pr.Order)
			if err != nil {
				t.Fatal(err)
			}
			nres, err := engine.Exec(np, db, opts)
			if err != nil {
				t.Fatal(err)
			}
			check("naive", nres.Rel)

			// Yannakakis (acyclic queries only).
			if acyclic.IsAcyclic(q) {
				yr, err := acyclic.Evaluate(q, db)
				if err != nil {
					t.Fatal(err)
				}
				check("yannakakis", yr)
			}

			// Mini-buckets with an unconstrained bound are exact.
			order := core.MCSVarOrder(q, rng)
			mb, err := minibucket.Evaluate(q, db, order, len(order))
			if err != nil {
				t.Fatal(err)
			}
			if !mb.Exact {
				t.Fatalf("%s: unconstrained mini-buckets split a bucket", in.name)
			}
			check("minibucket", mb.Rel)
		}
	}
}

// TestIntegrationWeightedPlansAgree checks that the weighted-order
// extension changes only plan shape, never answers.
func TestIntegrationWeightedPlansAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := instance.ColorDatabase(3)
	for trial := 0; trial < 5; trial++ {
		g, err := graph.Random(8, 14, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() == 0 {
			continue
		}
		q, err := instance.ColorQuery(g, instance.BooleanFree(g))
		if err != nil {
			t.Fatal(err)
		}
		w := plan.Weights{ByVar: map[cq.Var]int{0: 8, 1: 4}, Default: 1}
		p, err := core.BucketEliminationWeighted(q, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Exec(p, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalOracle(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Equal(want) {
			t.Fatalf("trial %d: weighted plan changed the answer", trial)
		}
	}
}
