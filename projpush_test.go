package projpush

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSolve3ColoringFacade(t *testing.T) {
	res, err := Solve3Coloring(Ladder(5), BucketElimination, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nonempty() {
		t.Fatal("ladders are 3-colorable")
	}
	if res.Stats.MaxArity == 0 || res.Stats.Joins == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGraph(10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	db := ColorDatabase(3)
	var first *Result
	for _, m := range Methods {
		p, err := BuildPlan(m, q, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(p, q); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if PlanWidth(p) <= 0 {
			t.Fatalf("%s: nonpositive width", m)
		}
		res, err := Execute(p, db, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else if first.Nonempty() != res.Nonempty() {
			t.Fatalf("%s disagrees on the Boolean answer", m)
		}
	}
}

func TestFacadeSQLRoundTrip(t *testing.T) {
	g := AugmentedPath(5)
	q, err := ColorQuery(g, BooleanFree(g))
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(EarlyProjection, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := SQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "SELECT DISTINCT") {
		t.Fatalf("unexpected SQL:\n%s", sql)
	}
	back, err := ParseSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Execute(p, ColorDatabase(3), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(back, ColorDatabase(3), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rel.Equal(b.Rel) {
		t.Fatal("SQL round trip changed the result")
	}
	naive, err := NaiveSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(naive, "WHERE") {
		t.Fatalf("naive SQL:\n%s", naive)
	}
}

func TestFacadeNonBoolean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := AugmentedCircularLadder(3)
	free := ChooseFree([]Var{0, 1, 2, 3, 4, 5}, 0.2, rng)
	q, err := ColorQuery(g, free)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(BucketElimination, q, ColorDatabase(3), ExecOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Arity() != len(free) {
		t.Fatalf("arity %d != %d", res.Rel.Arity(), len(free))
	}
}

func TestFacadeRelationConstruction(t *testing.T) {
	r := NewRelation([]Var{0, 1})
	r.Add(Tuple{1, 2})
	if r.Len() != 1 {
		t.Fatal("facade relation broken")
	}
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Fatal("facade graph broken")
	}
}
