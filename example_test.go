package projpush_test

import (
	"fmt"
	"log"

	"projpush"
)

// Deciding 3-colorability of a structured graph with bucket elimination.
func Example_solveColoring() {
	g := projpush.AugmentedLadder(6)
	res, err := projpush.Solve3Coloring(g, projpush.BucketElimination, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-colorable:", res.Nonempty())
	// Output:
	// 3-colorable: true
}

// Building plans under different methods and comparing their widths —
// the paper's structural cost measure.
func ExampleBuildPlan() {
	g := projpush.Ladder(5)
	q, err := projpush.ColorQuery(g, projpush.BooleanFree(g))
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range projpush.Methods {
		p, err := projpush.BuildPlan(m, q, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: width %d\n", m, projpush.PlanWidth(p))
	}
	// Output:
	// straightforward: width 10
	// earlyprojection: width 4
	// reordering: width 4
	// bucketelimination: width 3
}

// Rendering a plan in the paper's SQL dialect (Appendix A style).
func ExampleSQL() {
	q := &projpush.Query{
		Atoms: []projpush.Atom{
			{Rel: "edge", Args: []projpush.Var{0, 1}},
			{Rel: "edge", Args: []projpush.Var{1, 2}},
		},
		Free: []projpush.Var{0},
	}
	p, err := projpush.BuildPlan(projpush.EarlyProjection, q, nil)
	if err != nil {
		log.Fatal(err)
	}
	sql, err := projpush.SQL(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	// Output:
	// SELECT DISTINCT e1.v0
	// FROM edge e2 (v1,v2) JOIN edge e1 (v0,v1) ON (e2.v1 = e1.v1);
}

// Checking conjunctive-query containment via the Chandra–Merlin
// canonical database.
func ExampleContainedIn() {
	edge := func(u, v projpush.Var) projpush.Atom {
		return projpush.Atom{Rel: "edge", Args: []projpush.Var{u, v}}
	}
	longChain := &projpush.Query{
		Atoms: []projpush.Atom{edge(0, 1), edge(1, 2), edge(2, 3)},
		Free:  []projpush.Var{0},
	}
	shortChain := &projpush.Query{
		Atoms: []projpush.Atom{edge(0, 1)},
		Free:  []projpush.Var{0},
	}
	ok, err := projpush.ContainedIn(longChain, shortChain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain3 ⊆ chain1:", ok)
	// Output:
	// chain3 ⊆ chain1: true
}

// Structural analysis: treewidth and per-method widths from schemas
// alone.
func ExampleAnalyzeStructure() {
	g := projpush.AugmentedPath(6)
	q, err := projpush.ColorQuery(g, projpush.BooleanFree(g))
	if err != nil {
		log.Fatal(err)
	}
	r, err := projpush.AnalyzeStructure(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("treewidth:", r.TreewidthExact)
	fmt.Println("bucket width:", r.MethodWidths[projpush.BucketElimination])
	// Output:
	// treewidth: 1
	// bucket width: 2
}
