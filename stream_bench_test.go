package projpush

import (
	"fmt"
	"math/rand"
	"testing"

	"projpush/internal/core"
	"projpush/internal/cq"
	"projpush/internal/engine"
	"projpush/internal/graph"
	"projpush/internal/relation"
)

// Streaming-vs-materializing benchmarks on the same selective acyclic
// workload shapes as the Yannakakis series. The quantity under test is
// peak memory: the streaming executor's Stats.Bytes is its peak live
// residency (projection fused into the operators, build sides
// pre-reduced by semijoin pushdown, breaker storage released on close),
// while the iterator engine over the identical early-projection plan
// reports cumulative materialization. `make bench-json` pins the series
// in BENCH_stream.json; the acceptance signal is stream peak-bytes at
// least 5x under the iterator's on the chain and spider shapes at
// equal-or-better latency.

// runStreamVariant executes one engine variant b.N times, reporting the
// materialized/peak bytes and peak-rows instrumentation.
func runStreamVariant(b *testing.B, variant string, q *cq.Query, db cq.Database) {
	b.Helper()
	var bytes, peak int64
	var maxRows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res *engine.Result
		var err error
		switch variant {
		case "stream":
			p, perr := core.BuildPlan(core.MethodStream, q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.ExecStream(p, db, ybenchOpts)
		case "iterator":
			// The same plan shape as stream (early projection), executed
			// by the materializing iterator engine: the head-to-head that
			// isolates late materialization from plan quality.
			p, perr := core.BuildPlan(core.MethodEarlyProjection, q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.ExecIterator(p, db, ybenchOpts)
		case "yannakakis":
			res, err = engine.ExecYannakakis(q, db, ybenchOpts)
		default:
			p, perr := core.BuildPlan(core.Method(variant), q, nil)
			if perr != nil {
				b.Fatal(perr)
			}
			res, err = engine.Exec(p, db, ybenchOpts)
		}
		if err != nil {
			b.Fatalf("%s aborted: %v", variant, err)
		}
		bytes = res.Stats.Bytes
		peak = res.Stats.PeakBytes
		if res.Stats.MaxRows > maxRows {
			maxRows = res.Stats.MaxRows
		}
	}
	b.ReportMetric(float64(bytes), "stats-bytes")
	b.ReportMetric(float64(peak), "peak-bytes")
	b.ReportMetric(float64(maxRows), "maxrows")
}

func streamVariants(b *testing.B, q *cq.Query, db cq.Database) {
	for _, v := range []string{"stream", "iterator", "yannakakis", string(core.MethodBucketElimination)} {
		v := v
		b.Run(v, func(b *testing.B) { runStreamVariant(b, v, q, db) })
	}
}

// BenchmarkStreamChain is the Figure-6 path shape with a 10-tuple
// selective head (the BenchmarkYannakakisChain workload): the pushdown
// sweep carries the head's bindings across the chain before any join
// builds, so every breaker stores a few surviving tuples where the
// iterator materializes each intermediate in full.
func BenchmarkStreamChain(b *testing.B) {
	const atoms, rows, dom = 8, 6000, 4000
	rng := rand.New(rand.NewSource(3))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i := 0; i < atoms; i++ {
		name := fmt.Sprintf("r%d", i)
		rel := randomRel(rng, rows, dom, dom)
		if i == 0 {
			rel = randomRel(rng, 10, dom, dom) // the selective head
		}
		db[name] = rel
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(i), cq.Var(i + 1)}})
	}
	streamVariants(b, q, db)
}

// BenchmarkStreamSpider is the two-level star with one selective outer
// arm (the BenchmarkYannakakisSpider workload): the selective arm's
// pruning reaches every build side through the shared center before the
// builds allocate.
func BenchmarkStreamSpider(b *testing.B) {
	const arms, rows, dom = 5, 5000, 2000
	rng := rand.New(rand.NewSource(5))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0}}
	for i := 0; i < arms; i++ {
		inner, outer := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		y, z := cq.Var(1+2*i), cq.Var(2+2*i)
		db[inner] = randomRel(rng, rows, dom, dom)
		if i == 0 {
			db[outer] = randomRel(rng, 8, dom, dom) // the selective arm
		} else {
			db[outer] = randomRel(rng, rows, dom, dom)
		}
		q.Atoms = append(q.Atoms,
			cq.Atom{Rel: inner, Args: []cq.Var{0, y}},
			cq.Atom{Rel: outer, Args: []cq.Var{y, z}})
	}
	streamVariants(b, q, db)
}

// BenchmarkStreamAugPath is the Figure-6 augmented path with selective
// dangling edges (the BenchmarkYannakakisAugPath workload): every path
// relation is pre-reduced by its dangling partner's 12-tuple relation
// before any join builds.
func BenchmarkStreamAugPath(b *testing.B) {
	const order, rows, dom = 10, 4000, 80
	g := graph.AugmentedPath(order)
	rng := rand.New(rand.NewSource(7))
	db := cq.Database{}
	q := &cq.Query{Free: []cq.Var{0, 1}}
	for i, e := range g.Edges {
		name := fmt.Sprintf("e%d", i)
		dangling := e[1] >= order // dangling partners are numbered after the path
		if dangling {
			r := relation.New([]relation.Attr{0, 1})
			for j := 0; j < 12; j++ {
				r.Add(relation.Tuple{relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom))})
			}
			db[name] = r
		} else {
			db[name] = randomRel(rng, rows, dom, dom)
		}
		q.Atoms = append(q.Atoms, cq.Atom{Rel: name, Args: []cq.Var{cq.Var(e[0]), cq.Var(e[1])}})
	}
	streamVariants(b, q, db)
}
